//! The optimizer and executor: logical query block → physical multi-way
//! join plan → topology run.
//!
//! Implements the §2 optimizer behaviours on real structures:
//! selection pushdown, derived-column creation for expression join
//! predicates (the paper's `2·R.B < S.C` becomes a derived column compared
//! to `S.C`), output-scheme pruning (only downstream-needed columns are
//! shipped), sample-based skew detection (§3.4) and scheme selection.

use std::sync::Arc;

use squall_common::{DataType, Field, Result, Schema, SquallError, Tuple, Value};
use squall_core::cluster::ClusterSpec;
use squall_core::driver::{
    run_multiway, run_multiway_stream, AggPlan, JoinReport, LocalJoinKind, MultiwayConfig,
    MultiwayStream, WindowPlan,
};
use squall_core::standing::{ViewPlan, ViewWindow};
use squall_expr::join_cond::CmpOp;
use squall_expr::{AggFunc, JoinAtom, MultiJoinSpec, RelationDef, ScalarExpr};
use squall_join::WindowSpec;
use squall_join::{AggSpec, GroupByAggregator};
use squall_partition::optimizer::SchemeKind;
use squall_partition::SkewEstimate;

use crate::catalog::Catalog;
use crate::logical::{Expr, Query, WindowKind};
use crate::optimizer::{OptimizerDecision, OptimizerMode};

/// Execution knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Join component parallelism (the number of "machines").
    pub machines: usize,
    /// Force a scheme; `None` = Hybrid-Hypercube (it subsumes the others,
    /// §3.1).
    pub scheme: Option<SchemeKind>,
    pub local: LocalJoinKind,
    pub seed: u64,
    pub agg_parallelism: usize,
    /// Tolerated hash-over-random load ratio before an attribute is marked
    /// skewed (§3.4 chooser).
    pub skew_slack: f64,
    /// Worker pool size executing the topology (`None` = the host's
    /// available parallelism). Decoupled from `machines`: the cooperative
    /// executor runs any number of machines on this many OS threads.
    pub worker_threads: Option<usize>,
    /// Tuples per data-plane batch (1 = per-tuple messaging). Throughput
    /// knob only: routing stays per-tuple, so results and per-machine
    /// loads do not depend on it.
    pub batch_size: usize,
    /// Split every distributed query across these worker processes over
    /// TCP (`None` = single process). Results and per-machine loads are
    /// placement-independent; single-table queries still run locally.
    pub cluster: Option<ClusterSpec>,
    /// Checkpoint a standing view's operator state every this many
    /// epochs (`0` disables). One-shot queries ignore it.
    pub checkpoint_interval: u64,
    /// Declare a cluster peer lost after this much heartbeat silence, in
    /// milliseconds (`0` disables failure detection). Standing only.
    pub heartbeat_timeout_ms: u64,
    /// Cost-based plan search ([`crate::optimizer`]): join ordering and
    /// scheme selection. `Off` preserves the written FROM order and the
    /// config/default scheme — the pre-optimizer planner. Results are
    /// identical in every mode; only performance differs.
    pub optimizer: OptimizerMode,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            machines: 4,
            scheme: None,
            local: LocalJoinKind::DBToaster,
            seed: 42,
            agg_parallelism: 2,
            skew_slack: 0.5,
            worker_threads: None,
            batch_size: squall_runtime::DEFAULT_BATCH_SIZE,
            cluster: None,
            checkpoint_interval: 16,
            heartbeat_timeout_ms: 2000,
            optimizer: OptimizerMode::default(),
        }
    }
}

/// A query's answer: one handle serving both access patterns.
///
/// * **Materialized** — [`ResultSet::rows`] waits for completion and
///   returns every row, sorted for determinism. This is what
///   [`PhysicalQuery::execute`] produces.
/// * **Streaming** — `ResultSet` is an [`Iterator`] over result rows;
///   with [`PhysicalQuery::execute_stream`] the rows are yielded *while
///   the topology runs*, in production order, without buffering them.
///
/// [`ResultSet::report`] exposes the distributed run's [`JoinReport`]
/// (None for single-table queries, which run locally); on a streaming
/// result it first waits for the run to finish. In both modes
/// [`ResultSet::rows`] returns the rows the iterator has *not yet
/// yielded*, without consuming them — a peek at the remainder.
///
/// Error contract: materialized execution returns `Err` when the run
/// fails. A *streaming* run that fails mid-way simply ends the iterator
/// early — check [`ResultSet::error`] (or `report()?.error`) after
/// exhaustion before trusting the rows as complete.
///
/// ```
/// use squall_common::{tuple, DataType, Schema};
/// use squall_plan::physical::{execute_query, ExecConfig};
/// use squall_plan::{col, Catalog, Query};
///
/// let mut catalog = Catalog::new();
/// catalog.register(
///     "R",
///     Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
///     vec![tuple![1, 10], tuple![2, 20]],
/// ).unwrap();
/// catalog.register(
///     "S",
///     Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]),
///     vec![tuple![2, 7]],
/// ).unwrap();
/// let q = Query::from_tables([("R", "R"), ("S", "S")])
///     .filter(col("R.a").eq(col("S.a")))
///     .select([col("R.b"), col("S.c")]);
/// let mut rs = execute_query(&q, &catalog, &ExecConfig::default()).unwrap();
/// assert_eq!(rs.schema().arity(), 2);
/// assert_eq!(rs.rows(), vec![tuple![20, 7]]);
/// assert!(rs.report().is_some(), "distributed runs report metrics");
/// ```
pub struct ResultSet {
    schema: Schema,
    inner: ResultsInner,
    report: Option<JoinReport>,
    /// Opaque token held while this result is backed by a live run;
    /// released the moment the stream materializes (or on drop). The
    /// session layer uses it to refuse catalog mutations under a running
    /// query.
    guard: Option<Box<dyn std::any::Any + Send>>,
}

impl std::fmt::Debug for ResultSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match &self.inner {
            ResultsInner::Rows { rows, cursor } => format!("{} rows (cursor {cursor})", rows.len()),
            ResultsInner::Stream(_) => "streaming".to_string(),
        };
        f.debug_struct("ResultSet").field("schema", &self.schema).field("mode", &mode).finish()
    }
}

enum ResultsInner {
    Rows { rows: Vec<Tuple>, cursor: usize },
    // Boxed: the stream (topology handle + finalizer) dwarfs the row
    // variant, and every ResultSet ends its life as `Rows`.
    Stream(Box<QueryStream>),
}

impl ResultSet {
    /// A result set over already-materialized rows — how view-lifecycle
    /// statements (which have no topology run of their own to stream)
    /// return snapshots and shutdown reports through the same API as
    /// queries.
    pub fn materialized(schema: Schema, rows: Vec<Tuple>, report: Option<JoinReport>) -> ResultSet {
        ResultSet { schema, inner: ResultsInner::Rows { rows, cursor: 0 }, report, guard: None }
    }

    fn streaming(schema: Schema, stream: QueryStream) -> ResultSet {
        ResultSet {
            schema,
            inner: ResultsInner::Stream(Box::new(stream)),
            report: None,
            guard: None,
        }
    }

    /// Attach a token to be dropped when this result stops being a live
    /// run (stream exhaustion, materialization, or drop). No-op on an
    /// already-materialized result.
    pub fn attach_guard(&mut self, guard: Box<dyn std::any::Any + Send>) {
        if self.is_streaming() {
            self.guard = Some(guard);
        }
    }

    /// Output column names, in SELECT order.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All result rows not yet yielded by the iterator, sorted. On a
    /// streaming result this drains the run to completion first.
    pub fn rows(&mut self) -> &[Tuple] {
        self.materialize();
        match &self.inner {
            ResultsInner::Rows { rows, cursor } => &rows[*cursor..],
            ResultsInner::Stream(_) => unreachable!("materialized above"),
        }
    }

    /// The distributed join's run report (§6 monitoring quantities). On a
    /// streaming result this waits for the run to finish. `None` for
    /// single-table queries.
    pub fn report(&mut self) -> Option<&JoinReport> {
        self.materialize();
        self.report.as_ref()
    }

    /// The failure that ended a streaming run early, if any (waits for the
    /// run to finish first). Materialized execution surfaces the same
    /// failures as `Err` from [`PhysicalQuery::execute`] instead.
    pub fn error(&mut self) -> Option<&SquallError> {
        self.materialize();
        self.report.as_ref().and_then(|r| r.error.as_ref())
    }

    /// Is this result still backed by a live run (true) or a materialized
    /// row buffer (false)?
    pub fn is_streaming(&self) -> bool {
        matches!(self.inner, ResultsInner::Stream(_))
    }

    fn materialize(&mut self) {
        if let ResultsInner::Stream(stream) = &mut self.inner {
            let mut rows: Vec<Tuple> = stream.by_ref().collect();
            rows.sort();
            self.report = stream.report.take();
            self.inner = ResultsInner::Rows { rows, cursor: 0 };
            self.guard = None; // the run is over; release the catalog
        }
    }
}

/// Streaming access: yields each result row exactly once. In streaming
/// mode rows arrive in production order while the topology runs; in
/// materialized mode this walks the sorted row buffer.
impl Iterator for ResultSet {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        match &mut self.inner {
            ResultsInner::Rows { rows, cursor } => {
                let row = rows.get(*cursor)?.clone();
                *cursor += 1;
                Some(row)
            }
            ResultsInner::Stream(stream) => match stream.next() {
                Some(row) => Some(row),
                None => {
                    self.report = stream.report.take();
                    self.inner = ResultsInner::Rows { rows: Vec::new(), cursor: 0 };
                    self.guard = None;
                    None
                }
            },
        }
    }
}

/// Live result stream: the distributed run's sink output, filtered by
/// HAVING and projected into SELECT order tuple by tuple.
struct QueryStream {
    inner: Option<MultiwayStream>,
    finalizer: Finalizer,
    /// SQL semantics: a global aggregate over zero rows yields one row.
    emit_empty_agg: bool,
    /// Engine rows seen (pre-HAVING): the synthetic empty-aggregate row
    /// only applies when the aggregation itself produced nothing, not
    /// when HAVING filtered everything out.
    saw_rows: bool,
    produced: u64,
    report: Option<JoinReport>,
}

impl QueryStream {
    /// A row-processing error poisons the run: abort it and surface the
    /// error through the report.
    fn poison(&mut self, e: SquallError) {
        let mut report = self.inner.take().expect("stream present").cancel();
        report.error.get_or_insert(e);
        self.report = Some(report);
    }
}

impl Iterator for QueryStream {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            let stream = self.inner.as_mut()?;
            match stream.next() {
                Some(row) => {
                    self.saw_rows = true;
                    match self.finalizer.passes(&row) {
                        Ok(false) => continue,
                        Ok(true) => {}
                        Err(e) => {
                            self.poison(e);
                            return None;
                        }
                    }
                    match self.finalizer.project_final(&row) {
                        Ok(t) => {
                            self.produced += 1;
                            return Some(t);
                        }
                        Err(e) => {
                            self.poison(e);
                            return None;
                        }
                    }
                }
                None => {
                    let report = self.inner.take().expect("stream present").finish();
                    let ok = report.error.is_none();
                    self.report = Some(report);
                    if ok && !self.saw_rows && self.emit_empty_agg {
                        match self.finalizer.empty_agg_row() {
                            Ok(Some(row)) => {
                                self.produced += 1;
                                return Some(row);
                            }
                            Ok(None) => {}
                            Err(e) => {
                                // Run already complete; record the
                                // projection error on its report.
                                if let Some(r) = &mut self.report {
                                    r.error.get_or_insert(e);
                                }
                            }
                        }
                    }
                    return None;
                }
            }
        }
    }
}

/// One resolved, optimized source.
#[derive(Debug, Clone)]
struct PhysTable {
    name: String,
    alias: String,
    /// Pushed-down predicate over the *original* table schema.
    filter: Option<ScalarExpr>,
    /// Derived columns appended after the original columns (expression
    /// join predicates), over the original schema.
    derived: Vec<ScalarExpr>,
    /// Columns kept (into original ⊕ derived coordinates), sorted.
    kept: Vec<usize>,
    /// The projected, qualified schema fed to the join.
    schema: Schema,
    /// Qualified names over the *pre-pruning* original ⊕ derived
    /// coordinate space — how plan validation names a column that an atom
    /// references but pruning removed.
    orig_columns: Vec<String>,
}

/// How one SELECT item is produced from the engine output.
#[derive(Debug, Clone)]
enum FinalItem {
    /// Index into the (group keys ++ agg values) aggregate row.
    AggRow(usize),
    /// Expression over the join output row (non-aggregated queries).
    JoinExpr(ScalarExpr),
}

/// Per-row projection of engine output into SELECT order — detached from
/// [`PhysicalQuery`] so the streaming path can carry it into the iterator.
#[derive(Debug, Clone)]
struct Finalizer {
    final_items: Vec<FinalItem>,
    group_cols_len: usize,
    aggs: Vec<AggSpec>,
    /// HAVING predicate over the raw aggregate row (group keys ++ every
    /// aggregate, hidden ones included); rows failing it are filtered
    /// before projection.
    having: Option<ScalarExpr>,
}

impl Finalizer {
    fn project_final(&self, row: &Tuple) -> Result<Tuple> {
        let mut values = Vec::with_capacity(self.final_items.len());
        for item in &self.final_items {
            values.push(match item {
                FinalItem::AggRow(i) => row.get(*i).clone(),
                FinalItem::JoinExpr(e) => e.eval(row)?,
            });
        }
        Ok(Tuple::new(values))
    }

    /// Does this raw engine row survive the HAVING predicate?
    fn passes(&self, row: &Tuple) -> Result<bool> {
        match &self.having {
            None => Ok(true),
            Some(h) => h.eval_bool(row),
        }
    }

    /// SQL semantics for a global aggregate over zero rows: one row with
    /// COUNT = 0 and NULL sums/averages — unless HAVING rejects it (a
    /// predicate over the NULL/zero synthetic row that errors or is false
    /// filters the row, SQL's unknown-is-false). A *projection* error
    /// over the synthetic row is a real error, reported exactly like one
    /// over a produced row.
    fn empty_agg_row(&self) -> Result<Option<Tuple>> {
        debug_assert_eq!(self.group_cols_len, 0, "synthetic row only for global aggregates");
        let raw = Tuple::new(
            self.aggs
                .iter()
                .map(|a| match a.func {
                    AggFunc::Count => Value::Int(0),
                    _ => Value::Null,
                })
                .collect(),
        );
        if !self.passes(&raw).unwrap_or(false) {
            return Ok(None);
        }
        self.project_final(&raw).map(Some)
    }
}

/// An unresolved join atom: `(table, column)` pairs compared by `CmpOp`,
/// where a column id past the table's arity addresses a derived column.
type RawAtom = ((usize, usize), CmpOp, (usize, usize));

/// Outcome of the shared planning front half: either a locally-runnable
/// single-table input or a distributed multi-way join configuration
/// (boxed: the config dwarfs the local variant).
enum Prepared {
    Local(Vec<Tuple>),
    Distributed(Box<DistributedPlan>),
}

struct DistributedPlan {
    spec: MultiJoinSpec,
    data: Vec<Vec<Tuple>>,
    mcfg: MultiwayConfig,
}

/// Everything needed to launch a query as a resident materialized view:
/// the join spec and prepared initial load, the (standing-flagged)
/// topology configuration, and the view-maintenance plan the sink runs.
/// Produced by [`PhysicalQuery::prepare_standing`], consumed by
/// [`squall_core::standing::launch_standing`].
pub struct StandingPlan {
    pub spec: MultiJoinSpec,
    pub data: Vec<Vec<Tuple>>,
    pub mcfg: MultiwayConfig,
    pub view: ViewPlan,
}

/// Resolved window semantics: the shape plus each relation's event-time
/// column in its post-pruning (join input) coordinates.
#[derive(Debug, Clone)]
struct PhysWindow {
    spec: WindowSpec,
    ts_cols: Vec<usize>,
    /// Relations whose window column is the stream's declared event-time
    /// column: their data is already validated and event-time-ordered at
    /// registration, so `prepare_run` skips the per-run sort.
    presorted: Vec<bool>,
}

/// An optimized query ready to run.
#[derive(Debug)]
pub struct PhysicalQuery {
    tables: Vec<PhysTable>,
    atoms: Vec<JoinAtom>,
    /// Group-by columns in join-output coordinates.
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    /// HAVING over the aggregate row (group keys ++ aggs, hidden ones
    /// included).
    having: Option<ScalarExpr>,
    final_items: Vec<FinalItem>,
    out_schema: Schema,
    is_aggregate: bool,
    /// Window + aggregation: results are per-window rows with
    /// `window_start` / `window_end` output columns prepended.
    windowed_agg: bool,
    window: Option<PhysWindow>,
    /// ORDER BY keys as `(output column, descending)` pairs.
    order_by: Vec<(usize, bool)>,
    limit: Option<usize>,
    /// What the cost-based optimizer decided for this plan, when it ran —
    /// feeds scheme selection in `prepare_run` and the explain table.
    decision: Option<OptimizerDecision>,
}

impl PhysicalQuery {
    /// Resolve and optimize a logical block.
    pub fn plan(q: &Query, catalog: &Catalog) -> Result<PhysicalQuery> {
        if q.tables.is_empty() {
            return Err(SquallError::InvalidPlan("FROM clause is empty".into()));
        }
        if q.select.is_empty() {
            return Err(SquallError::InvalidPlan("SELECT list is empty".into()));
        }
        // Qualified schemas and global offsets over the ORIGINAL columns.
        let mut schemas: Vec<Schema> = Vec::new();
        for (tname, alias) in &q.tables {
            schemas.push(catalog.get(tname)?.schema.qualified(alias));
        }
        let mut offsets = Vec::with_capacity(schemas.len());
        {
            let mut off = 0;
            for s in &schemas {
                offsets.push(off);
                off += s.arity();
            }
        }
        // Name resolution: "alias.col" exact, bare "col" if unique.
        let resolve = |name: &str| -> Result<(usize, usize)> {
            let mut hit = None;
            for (ti, s) in schemas.iter().enumerate() {
                for ci in 0..s.arity() {
                    let f = &s.field(ci).name;
                    let matches =
                        f == name || (!name.contains('.') && f.split('.').nth(1) == Some(name));
                    if matches {
                        if hit.is_some() {
                            return Err(SquallError::InvalidPlan(format!(
                                "ambiguous column {name}"
                            )));
                        }
                        hit = Some((ti, ci));
                    }
                }
            }
            hit.ok_or_else(|| SquallError::UnknownColumn(name.to_string()))
        };
        // Expr → ScalarExpr over (table, col) global coordinates; rejects
        // aggregates.
        fn to_scalar(
            e: &Expr,
            resolve: &dyn Fn(&str) -> Result<(usize, usize)>,
            offsets: &[usize],
        ) -> Result<ScalarExpr> {
            Ok(match e {
                Expr::Col(n) => {
                    let (t, c) = resolve(n)?;
                    ScalarExpr::Column(offsets[t] + c)
                }
                Expr::Lit(v) => ScalarExpr::Literal(v.clone()),
                Expr::Bin { op, lhs, rhs } => ScalarExpr::Bin {
                    op: *op,
                    lhs: Box::new(to_scalar(lhs, resolve, offsets)?),
                    rhs: Box::new(to_scalar(rhs, resolve, offsets)?),
                },
                Expr::Not(x) => ScalarExpr::Not(Box::new(to_scalar(x, resolve, offsets)?)),
                Expr::Agg { .. } => {
                    return Err(SquallError::InvalidPlan(
                        "aggregate calls are only allowed in SELECT".into(),
                    ))
                }
            })
        }
        let resolve_fn = |n: &str| resolve(n);

        // Tables of a resolved global expression.
        let tables_of = |e: &ScalarExpr| -> Vec<usize> {
            let mut cols = vec![];
            e.referenced_columns(&mut cols);
            let mut ts: Vec<usize> = cols
                .into_iter()
                .map(|g| offsets.iter().rposition(|&o| o <= g).expect("offset"))
                .collect();
            ts.sort_unstable();
            ts.dedup();
            ts
        };

        // Classify WHERE conjuncts.
        let mut pushed: Vec<Vec<ScalarExpr>> = vec![Vec::new(); q.tables.len()];
        let mut derived: Vec<Vec<ScalarExpr>> = vec![Vec::new(); q.tables.len()];
        // Raw atoms as (table, original-or-derived col id) pairs; derived
        // ids are original_arity + k.
        let mut raw_atoms: Vec<RawAtom> = Vec::new();
        for f in &q.filters {
            let g = to_scalar(f, &resolve_fn, &offsets)?;
            let touched = tables_of(&g);
            match touched.len() {
                0 => {
                    return Err(SquallError::InvalidPlan(format!(
                        "constant predicate not supported: {f:?}"
                    )))
                }
                1 => {
                    let t = touched[0];
                    // Remap to table-local coordinates.
                    let local = g.remap_columns(&|gc| gc - offsets[t]);
                    pushed[t].push(local);
                }
                2 => {
                    // Must be `sideA op sideB` with each side on one table.
                    let (op, lhs, rhs) = match &g {
                        ScalarExpr::Bin { op, lhs, rhs } if op.is_comparison() => {
                            (*op, lhs.as_ref().clone(), rhs.as_ref().clone())
                        }
                        _ => {
                            return Err(SquallError::InvalidPlan(format!(
                                "unsupported join predicate shape: {f:?}"
                            )))
                        }
                    };
                    let (lt, rt) = (tables_of(&lhs), tables_of(&rhs));
                    if lt.len() != 1 || rt.len() != 1 || lt == rt {
                        return Err(SquallError::InvalidPlan(format!(
                            "join predicate must compare two tables: {f:?}"
                        )));
                    }
                    let (lt, rt) = (lt[0], rt[0]);
                    // Plain column or derived expression per side.
                    let mut side_col = |t: usize, e: ScalarExpr| -> usize {
                        match e {
                            ScalarExpr::Column(g) => g - offsets[t],
                            other => {
                                let local = other.remap_columns(&|gc| gc - offsets[t]);
                                derived[t].push(local);
                                schemas[t].arity() + derived[t].len() - 1
                            }
                        }
                    };
                    let lcol = side_col(lt, lhs);
                    let rcol = side_col(rt, rhs);
                    let cmp = CmpOp::from_binop(op).expect("comparison checked");
                    raw_atoms.push(((lt, lcol), cmp, (rt, rcol)));
                }
                _ => {
                    return Err(SquallError::InvalidPlan(format!(
                        "predicates over 3+ tables are not supported: {f:?}"
                    )))
                }
            }
        }

        // Window semantics: resolve the shape and each relation's
        // event-time column (original coordinates) — explicit `ON col`
        // first, then the stream's declared event-time column.
        let window_globals: Option<(WindowSpec, Vec<usize>, Vec<bool>)> = match &q.window {
            None => None,
            Some(w) => {
                if q.tables.len() < 2 {
                    return Err(SquallError::InvalidPlan(
                        "window semantics apply to stream joins; a single-relation \
                         windowed query has no join state to expire"
                            .into(),
                    ));
                }
                let spec = match w.kind {
                    WindowKind::Tumbling { width: 0 } => {
                        return Err(SquallError::InvalidPlan("tumbling width must be > 0".into()))
                    }
                    WindowKind::Sliding { size: 0 } => {
                        return Err(SquallError::InvalidPlan("sliding size must be > 0".into()))
                    }
                    WindowKind::Tumbling { width } => WindowSpec::Tumbling { width },
                    WindowKind::Sliding { size } => WindowSpec::Sliding { size },
                };
                let mut ts_globals = Vec::with_capacity(q.tables.len());
                let mut presorted = Vec::with_capacity(q.tables.len());
                for (t, (tname, alias)) in q.tables.iter().enumerate() {
                    let c = match &w.time_col {
                        Some(name) if name.contains('.') => {
                            return Err(SquallError::InvalidPlan(format!(
                                "WINDOW ... ON takes an unqualified column name \
                                 present in every relation, got {name}"
                            )))
                        }
                        Some(name) => {
                            schemas[t].index_of(&format!("{alias}.{name}")).map_err(|_| {
                                SquallError::UnknownColumn(format!(
                                    "{alias}.{name} (window event-time column)"
                                ))
                            })?
                        }
                        None => catalog.get(tname)?.event_time_col().ok_or_else(|| {
                            SquallError::InvalidPlan(format!(
                                "{tname} is not a stream: register it with register_stream \
                                 or name the event-time column with WINDOW ... ON <col>"
                            ))
                        })?,
                    };
                    if schemas[t].field(c).data_type != DataType::Int {
                        return Err(SquallError::InvalidPlan(format!(
                            "window event-time column {} must be Int, is {}",
                            schemas[t].field(c).name,
                            schemas[t].field(c).data_type
                        )));
                    }
                    ts_globals.push(offsets[t] + c);
                    presorted.push(catalog.get(tname)?.event_time_col() == Some(c));
                }
                Some((spec, ts_globals, presorted))
            }
        };

        // Aggregation shape.
        let has_group = !q.group_by.is_empty();
        let has_agg_items = q.select.iter().any(|(e, _)| e.has_agg());
        let is_aggregate = has_group || has_agg_items;
        let group_globals: Vec<usize> = q
            .group_by
            .iter()
            .map(|e| match e {
                Expr::Col(n) => {
                    let (t, c) = resolve(n)?;
                    Ok(offsets[t] + c)
                }
                _ => Err(SquallError::InvalidPlan("GROUP BY supports plain columns".into())),
            })
            .collect::<Result<_>>()?;

        // Needed original columns per table: atoms + select + group by.
        let mut needed: Vec<Vec<usize>> = vec![Vec::new(); q.tables.len()];
        let need_global = |g: usize, needed: &mut Vec<Vec<usize>>| {
            let t = offsets.iter().rposition(|&o| o <= g).expect("offset");
            let c = g - offsets[t];
            if !needed[t].contains(&c) {
                needed[t].push(c);
            }
        };
        for ((lt, lc), _, (rt, rc)) in &raw_atoms {
            if *lc < schemas[*lt].arity() {
                need_global(offsets[*lt] + lc, &mut needed);
            }
            if *rc < schemas[*rt].arity() {
                need_global(offsets[*rt] + rc, &mut needed);
            }
        }
        let mut select_scalars: Vec<Option<ScalarExpr>> = Vec::new();
        for (e, _) in &q.select {
            if e.has_agg() {
                // Aggregate arguments are evaluated at the aggregation
                // stage over the join output — their columns must survive
                // the output-scheme pruning.
                let mut names = vec![];
                e.columns(&mut names);
                for n in &names {
                    let (t, c) = resolve(n)?;
                    need_global(offsets[t] + c, &mut needed);
                }
                select_scalars.push(None);
            } else {
                let g = to_scalar(e, &resolve_fn, &offsets)?;
                let mut cols = vec![];
                g.referenced_columns(&mut cols);
                for c in cols {
                    need_global(c, &mut needed);
                }
                select_scalars.push(Some(g));
            }
        }
        for &g in &group_globals {
            need_global(g, &mut needed);
        }
        for e in &q.having {
            // HAVING aggregate arguments are evaluated over the join
            // output too — their columns must survive pruning even when
            // no SELECT item mentions them.
            let mut names = vec![];
            e.columns(&mut names);
            for n in &names {
                let (t, c) = resolve(n)?;
                need_global(offsets[t] + c, &mut needed);
            }
        }
        if let Some((_, ts_globals, _)) = &window_globals {
            // Event-time columns must survive output-scheme pruning: the
            // window join reads them from the shipped tuples and the
            // emitted results.
            for &g in ts_globals {
                need_global(g, &mut needed);
            }
        }
        // Derived columns referenced cols are needed only at the source —
        // they are computed there, not shipped as inputs.

        // Build physical tables: kept = needed originals (sorted) +
        // derived (always kept).
        let mut tables = Vec::with_capacity(q.tables.len());
        for (t, (tname, alias)) in q.tables.iter().enumerate() {
            let mut kept = needed[t].clone();
            kept.sort_unstable();
            // A relation contributing no columns still needs one column to
            // exist as a stream; keep column 0.
            if kept.is_empty() && derived[t].is_empty() {
                kept.push(0);
            }
            let orig_arity = schemas[t].arity();
            let mut fields: Vec<Field> =
                kept.iter().map(|&c| schemas[t].field(c).clone()).collect();
            for (k, _) in derived[t].iter().enumerate() {
                fields.push(Field::new(format!("{alias}.$expr{k}"), DataType::Int));
            }
            let mut all_kept = kept.clone();
            for k in 0..derived[t].len() {
                all_kept.push(orig_arity + k);
            }
            let filter = pushed[t].iter().cloned().reduce(ScalarExpr::and);
            let orig_columns: Vec<String> = (0..orig_arity)
                .map(|c| schemas[t].field(c).name.clone())
                .chain((0..derived[t].len()).map(|k| format!("{alias}.$expr{k}")))
                .collect();
            tables.push(PhysTable {
                name: tname.clone(),
                alias: alias.clone(),
                filter,
                derived: derived[t].clone(),
                kept: all_kept,
                schema: Schema::new(fields),
                orig_columns,
            });
        }
        // Old (table, col-with-derived) → new join-output coordinates.
        let mut new_offsets = Vec::with_capacity(tables.len());
        {
            let mut off = 0;
            for t in &tables {
                new_offsets.push(off);
                off += t.schema.arity();
            }
        }
        let new_local = |t: usize, c: usize| -> usize {
            tables[t].kept.iter().position(|&k| k == c).expect("kept column")
        };
        // Atom columns must have survived output-scheme pruning; a miss
        // is reported as a typed error naming the pruned column rather
        // than a panic or a downstream hash mismatch.
        let checked_local = |t: usize, c: usize| -> Result<usize> {
            tables[t].kept.iter().position(|&k| k == c).ok_or_else(|| {
                SquallError::PrunedColumnReference {
                    relation: tables[t].alias.clone(),
                    column: tables[t]
                        .orig_columns
                        .get(c)
                        .cloned()
                        .unwrap_or_else(|| format!("#{c}")),
                }
            })
        };
        let atoms: Vec<JoinAtom> = raw_atoms
            .iter()
            .map(|&((lt, lc), op, (rt, rc))| {
                Ok(JoinAtom {
                    left_rel: lt,
                    left_col: checked_local(lt, lc)?,
                    op,
                    right_rel: rt,
                    right_col: checked_local(rt, rc)?,
                })
            })
            .collect::<Result<_>>()?;
        let remap_global = |g: usize| -> usize {
            let t = offsets.iter().rposition(|&o| o <= g).expect("offset");
            new_offsets[t] + new_local(t, g - offsets[t])
        };
        let group_cols: Vec<usize> = group_globals.iter().map(|&g| remap_global(g)).collect();
        let window = window_globals.map(|(spec, ts_globals, presorted)| PhysWindow {
            spec,
            // Each relation's event-time column, local to its pruned
            // (join-input) schema.
            ts_cols: ts_globals
                .iter()
                .enumerate()
                .map(|(t, &g)| new_local(t, g - offsets[t]))
                .collect(),
            presorted,
        });

        // SELECT items → aggregate specs / final projection.
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut final_items = Vec::with_capacity(q.select.len());
        let mut out_fields = Vec::with_capacity(q.select.len());
        for ((e, name), scalar) in q.select.iter().zip(&select_scalars) {
            let out_name = name.clone().unwrap_or_else(|| display_name(e));
            let dtype = DataType::Float; // nominal; results carry real types
            out_fields.push(Field::new(out_name, dtype));
            if is_aggregate {
                match e {
                    Expr::Agg { func, arg } => {
                        let input = match arg {
                            Some(a) => {
                                let g = to_scalar(a, &resolve_fn, &offsets)?;
                                Some(g.remap_columns(&remap_global))
                            }
                            None => None,
                        };
                        let spec = match func {
                            AggFunc::Count => AggSpec::count(),
                            AggFunc::Sum => AggSpec::sum(input.ok_or_else(|| {
                                SquallError::InvalidPlan("SUM needs an argument".into())
                            })?),
                            AggFunc::Avg => AggSpec::avg(input.ok_or_else(|| {
                                SquallError::InvalidPlan("AVG needs an argument".into())
                            })?),
                        };
                        aggs.push(spec);
                        final_items.push(FinalItem::AggRow(group_cols.len() + aggs.len() - 1));
                    }
                    Expr::Col(n) => {
                        let (t, c) = resolve(n)?;
                        let join_col = remap_global(offsets[t] + c);
                        let pos =
                            group_cols.iter().position(|&g| g == join_col).ok_or_else(|| {
                                SquallError::InvalidPlan(format!(
                                    "column {n} must appear in GROUP BY"
                                ))
                            })?;
                        final_items.push(FinalItem::AggRow(pos));
                    }
                    _ => {
                        return Err(SquallError::InvalidPlan(
                            "aggregate queries select columns or aggregates".into(),
                        ))
                    }
                }
            } else {
                let g = scalar.as_ref().expect("non-aggregate item resolved");
                final_items.push(FinalItem::JoinExpr(g.remap_columns(&remap_global)));
            }
        }
        // HAVING: resolved over the aggregate row (group keys ++
        // aggregates). Aggregate calls not present in SELECT are appended
        // as *hidden* aggregate columns — computed and filtered on, never
        // projected.
        fn having_scalar(
            e: &Expr,
            resolve: &dyn Fn(&str) -> Result<(usize, usize)>,
            offsets: &[usize],
            remap_global: &dyn Fn(usize) -> usize,
            group_cols: &[usize],
            aggs: &mut Vec<AggSpec>,
        ) -> Result<ScalarExpr> {
            Ok(match e {
                Expr::Agg { func, arg } => {
                    // COUNT ignores its argument, matching the SELECT
                    // path's AggSpec::count().
                    let input = match (func, arg) {
                        (AggFunc::Count, _) => None,
                        (_, Some(a)) => {
                            let g = to_scalar(a, resolve, offsets)?;
                            Some(g.remap_columns(remap_global))
                        }
                        (f, None) => {
                            return Err(SquallError::InvalidPlan(format!("{f} needs an argument")))
                        }
                    };
                    let idx = match aggs.iter().position(|s| s.func == *func && s.input == input) {
                        Some(i) => i,
                        None => {
                            aggs.push(AggSpec { func: *func, input });
                            aggs.len() - 1
                        }
                    };
                    ScalarExpr::Column(group_cols.len() + idx)
                }
                Expr::Col(n) => {
                    let (t, c) = resolve(n)?;
                    let join_col = remap_global(offsets[t] + c);
                    let pos = group_cols.iter().position(|&g| g == join_col).ok_or_else(|| {
                        SquallError::InvalidPlan(format!(
                            "HAVING column {n} must appear in GROUP BY (or inside an aggregate)"
                        ))
                    })?;
                    ScalarExpr::Column(pos)
                }
                Expr::Lit(v) => ScalarExpr::Literal(v.clone()),
                Expr::Bin { op, lhs, rhs } => ScalarExpr::Bin {
                    op: *op,
                    lhs: Box::new(having_scalar(
                        lhs,
                        resolve,
                        offsets,
                        remap_global,
                        group_cols,
                        aggs,
                    )?),
                    rhs: Box::new(having_scalar(
                        rhs,
                        resolve,
                        offsets,
                        remap_global,
                        group_cols,
                        aggs,
                    )?),
                },
                Expr::Not(x) => ScalarExpr::Not(Box::new(having_scalar(
                    x,
                    resolve,
                    offsets,
                    remap_global,
                    group_cols,
                    aggs,
                )?)),
            })
        }
        let mut having: Option<ScalarExpr> = None;
        if !q.having.is_empty() {
            if !is_aggregate {
                return Err(SquallError::InvalidPlan(
                    "HAVING requires aggregation (GROUP BY or aggregate SELECT items)".into(),
                ));
            }
            for e in &q.having {
                let s =
                    having_scalar(e, &resolve_fn, &offsets, &remap_global, &group_cols, &mut aggs)?;
                having = Some(match having {
                    None => s,
                    Some(prev) => ScalarExpr::and(prev, s),
                });
            }
        }

        if is_aggregate && aggs.is_empty() {
            return Err(SquallError::InvalidPlan(
                "GROUP BY without aggregates is not supported".into(),
            ));
        }

        // Windowed aggregation: the engine emits per-window rows shaped
        // (window_start, window_end, group…, agg…), so two output columns
        // are prepended and every aggregate-row index — SELECT items and
        // the HAVING predicate, which then filters per-window groups —
        // shifts by two.
        let windowed_agg = is_aggregate && window.is_some();
        if windowed_agg {
            for item in &mut final_items {
                if let FinalItem::AggRow(i) = item {
                    *i += 2;
                }
            }
            final_items.insert(0, FinalItem::AggRow(1));
            final_items.insert(0, FinalItem::AggRow(0));
            out_fields.insert(0, Field::new("window_end", DataType::Int));
            out_fields.insert(0, Field::new("window_start", DataType::Int));
            having = having.map(|h| h.remap_columns(&|c| c + 2));
        }

        // ORDER BY keys name *output* columns: a SELECT alias or the
        // item's display name.
        let mut order_by = Vec::with_capacity(q.order_by.len());
        for key in &q.order_by {
            let mut hits = out_fields.iter().enumerate().filter(|(_, f)| f.name == key.column);
            let idx = match (hits.next(), hits.next()) {
                (Some((i, _)), None) => i,
                (Some(_), Some(_)) => {
                    return Err(SquallError::InvalidPlan(format!(
                        "ambiguous ORDER BY column {}",
                        key.column
                    )))
                }
                (None, _) => {
                    return Err(SquallError::UnknownColumn(format!(
                        "{} (ORDER BY names an output column: a SELECT alias or item)",
                        key.column
                    )))
                }
            };
            order_by.push((idx, key.desc));
        }

        Ok(PhysicalQuery {
            tables,
            atoms,
            group_cols,
            aggs,
            having,
            final_items,
            out_schema: Schema::new(out_fields),
            is_aggregate,
            windowed_agg,
            window,
            order_by,
            limit: q.limit.map(|n| n as usize),
            decision: None,
        })
    }

    /// Apply a table's pushed filter, derived columns and projection.
    fn prepare_table(&self, t: usize, data: &[Tuple]) -> Result<Vec<Tuple>> {
        let pt = &self.tables[t];
        let mut out = Vec::with_capacity(data.len());
        for tuple in data {
            if let Some(f) = &pt.filter {
                if !f.eval_bool(tuple)? {
                    continue;
                }
            }
            let orig_arity = tuple.arity();
            let mut extended: Option<Vec<Value>> = None;
            if !pt.derived.is_empty() {
                let mut v = tuple.values().to_vec();
                for d in &pt.derived {
                    v.push(d.eval(tuple)?);
                }
                extended = Some(v);
            }
            let values: Vec<Value> = pt
                .kept
                .iter()
                .map(|&c| match &extended {
                    Some(v) => v[c].clone(),
                    None => {
                        debug_assert!(c < orig_arity);
                        tuple.get(c).clone()
                    }
                })
                .collect();
            out.push(Tuple::new(values));
        }
        Ok(out)
    }

    /// How one SELECT item is produced from the engine output (shared by
    /// the materialized and streaming paths, which both project row by
    /// row).
    fn finalizer(&self) -> Finalizer {
        Finalizer {
            final_items: self.final_items.clone(),
            group_cols_len: self.group_cols.len(),
            aggs: self.aggs.clone(),
            having: self.having.clone(),
        }
    }

    /// The materialized-result ordering contract: ORDER BY keys in
    /// sequence (descending keys reversed), every tie — and the
    /// no-ORDER-BY case — broken by whole-row ascending order so results
    /// stay deterministic; then LIMIT truncates.
    fn finalize_order(&self, rows: &mut Vec<Tuple>) {
        if self.order_by.is_empty() {
            rows.sort();
        } else {
            let keys = &self.order_by;
            rows.sort_by(|a, b| {
                for &(c, desc) in keys {
                    let ord = a.get(c).cmp(b.get(c));
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                a.cmp(b)
            });
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
    }

    /// Source-side work (filter, derive, project — the co-located source
    /// components of §2), statistics and scheme/config selection: shared
    /// front half of [`PhysicalQuery::execute`] and
    /// [`PhysicalQuery::execute_stream`].
    fn prepare_run(&self, catalog: &Catalog, cfg: &ExecConfig) -> Result<Prepared> {
        self.validate_atoms()?;
        let mut data: Vec<Vec<Tuple>> = Vec::with_capacity(self.tables.len());
        for (t, pt) in self.tables.iter().enumerate() {
            let raw = Arc::clone(&catalog.get(&pt.name)?.data);
            data.push(self.prepare_table(t, &raw)?);
        }
        if let Some(w) = &self.window {
            // Windowed topologies require spouts that emit in event-time
            // order (the watermark-eviction contract). Streams windowed on
            // their declared column were sorted and validated once at
            // registration (selection/projection preserve order); only
            // explicit `ON` over other columns pays a per-run sort.
            for (t, d) in data.iter_mut().enumerate() {
                if !w.presorted[t] {
                    squall_runtime::sort_by_event_time(d, w.ts_cols[t])?;
                }
            }
        }

        // Single-table queries run locally (no distribution needed).
        if self.tables.len() == 1 {
            return Ok(Prepared::Local(std::mem::take(&mut data[0])));
        }

        // Statistics: post-selection skew detection per join-key
        // occurrence (§3.4).
        let mut rels: Vec<RelationDef> = self
            .tables
            .iter()
            .zip(&data)
            .map(|(pt, d)| RelationDef::new(pt.alias.clone(), pt.schema.clone(), d.len() as u64))
            .collect();
        for a in &self.atoms {
            for &(t, c) in &[(a.left_rel, a.left_col), (a.right_rel, a.right_col)] {
                let sample: Vec<Value> =
                    data[t].iter().take(20_000).map(|row| row.get(c).clone()).collect();
                let est = SkewEstimate::from_sample(sample.iter());
                if est.is_skewed(cfg.machines, cfg.skew_slack) {
                    let name = rels[t].schema.field(c).name.clone();
                    rels[t].schema.set_skewed(&name)?;
                }
            }
        }
        let spec = MultiJoinSpec::new(rels, self.atoms.clone())?;
        if !spec.is_connected() {
            return Err(SquallError::InvalidPlan(
                "join graph is disconnected (Cartesian products unsupported)".into(),
            ));
        }

        // Scheme & parallelism selection: an explicit config scheme wins,
        // then the optimizer's cost-based choice, then the Hybrid default
        // (it subsumes the others, §3.1).
        let scheme = cfg
            .scheme
            .or_else(|| self.decision.as_ref().and_then(|d| d.scheme_kind()))
            .unwrap_or(SchemeKind::Hybrid);
        let mut mcfg = MultiwayConfig::new(scheme, cfg.local, cfg.machines);
        mcfg.seed = cfg.seed;
        mcfg.worker_threads = cfg.worker_threads;
        mcfg.batch_size = cfg.batch_size.max(1);
        mcfg.cluster = cfg.cluster.clone();
        mcfg.checkpoint_interval = cfg.checkpoint_interval;
        mcfg.heartbeat_timeout_ms = cfg.heartbeat_timeout_ms;
        if let Some(w) = &self.window {
            mcfg = mcfg.with_window(WindowPlan { spec: w.spec, ts_cols: w.ts_cols.clone() });
        }
        if self.is_aggregate {
            mcfg = mcfg.with_agg(AggPlan {
                group_cols: self.group_cols.clone(),
                aggs: self.aggs.clone(),
                parallelism: cfg.agg_parallelism.max(1),
            });
        }
        Ok(Prepared::Distributed(Box::new(DistributedPlan { spec, data, mcfg })))
    }

    /// Plan this query as a **standing view**: the same source-side work
    /// and scheme selection as [`PhysicalQuery::execute`], but producing a
    /// resident-topology configuration plus the [`ViewPlan`] the
    /// view-maintenance sink runs — instead of a one-shot run.
    ///
    /// Standing restrictions, rejected with typed errors: ORDER BY and
    /// LIMIT have no incremental meaning (a view is an unordered
    /// multiset; order when you read it), and a *windowed* view must
    /// window every relation on its stream's declared event-time column —
    /// that is the only column whose appends the catalog keeps monotonic,
    /// which the window join's eviction contract depends on.
    pub fn prepare_standing(&self, catalog: &Catalog, cfg: &ExecConfig) -> Result<StandingPlan> {
        self.validate_atoms()?;
        if !self.order_by.is_empty() || self.limit.is_some() {
            return Err(SquallError::InvalidPlan(
                "ORDER BY / LIMIT are not supported in a materialized view \
                 (views are unordered; order when querying the view)"
                    .into(),
            ));
        }
        if let Some(w) = &self.window {
            if let Some(t) = w.presorted.iter().position(|p| !p) {
                return Err(SquallError::InvalidPlan(format!(
                    "windowed standing views must window on each stream's declared \
                     event-time column, but {} windows on an undeclared column",
                    self.tables[t].alias
                )));
            }
        }
        // Source-side work over the initial contents.
        let mut data: Vec<Vec<Tuple>> = Vec::with_capacity(self.tables.len());
        for (t, pt) in self.tables.iter().enumerate() {
            let raw = Arc::clone(&catalog.get(&pt.name)?.data);
            data.push(self.prepare_table(t, &raw)?);
        }
        // Unlike the one-shot path, NO skew sampling and NO random
        // routing: a retraction's delta must land on the exact machine
        // holding the matching insert, so every tuple's route has to be a
        // pure function of its content. The random escape hatch for
        // skewed keys (§3.4) trades that determinism for balance, which
        // would strand +1/−1 pairs on different machines and corrupt the
        // maintained state — standing views always route by key hash.
        let rels: Vec<RelationDef> = self
            .tables
            .iter()
            .zip(&data)
            .map(|(pt, d)| RelationDef::new(pt.alias.clone(), pt.schema.clone(), d.len() as u64))
            .collect();
        let spec = MultiJoinSpec::new(rels, self.atoms.clone())?;
        if self.tables.len() > 1 && !spec.is_connected() {
            return Err(SquallError::InvalidPlan(
                "join graph is disconnected (Cartesian products unsupported)".into(),
            ));
        }

        let mut mcfg = MultiwayConfig::new(SchemeKind::Hash, cfg.local, cfg.machines);
        mcfg.seed = cfg.seed;
        mcfg.worker_threads = cfg.worker_threads;
        mcfg.batch_size = cfg.batch_size.max(1);
        mcfg.cluster = cfg.cluster.clone();
        mcfg.checkpoint_interval = cfg.checkpoint_interval;
        mcfg.heartbeat_timeout_ms = cfg.heartbeat_timeout_ms;
        mcfg.standing = true;
        if let Some(w) = &self.window {
            mcfg = mcfg.with_window(WindowPlan { spec: w.spec, ts_cols: w.ts_cols.clone() });
        }
        // No `mcfg.agg`: in a standing topology the view sink aggregates,
        // diffing published rows per epoch.

        let view = self.view_plan(&spec)?;
        Ok(StandingPlan { spec, data, mcfg, view })
    }

    /// The sink half of [`PhysicalQuery::prepare_standing`]: how signed
    /// join deltas become view rows.
    fn view_plan(&self, spec: &MultiJoinSpec) -> Result<ViewPlan> {
        let windowed = if self.windowed_agg {
            let w = self.window.as_ref().expect("windowed_agg implies a window");
            let arities: Vec<usize> = spec.relations.iter().map(|r| r.schema.arity()).collect();
            Some(ViewWindow {
                spec: w.spec,
                ts_cols: squall_join::output_ts_cols(&arities, &w.ts_cols),
            })
        } else {
            None
        };
        let (group_cols, aggs, finalize) = if self.is_aggregate {
            let mut finalize = Vec::with_capacity(self.final_items.len());
            for item in &self.final_items {
                match item {
                    FinalItem::AggRow(i) => finalize.push(ScalarExpr::col(*i)),
                    FinalItem::JoinExpr(_) => {
                        return Err(SquallError::InvalidPlan(
                            "aggregate view SELECT items must be group keys or aggregates".into(),
                        ))
                    }
                }
            }
            if self.windowed_agg {
                // The sink's input rows are (window_start, window_end,
                // join output…): group keys and aggregate inputs shift by
                // the two prepended window columns — HAVING and the SELECT
                // items were already shifted at plan time.
                let group_cols: Vec<usize> =
                    [0, 1].into_iter().chain(self.group_cols.iter().map(|c| c + 2)).collect();
                let aggs: Vec<AggSpec> = self
                    .aggs
                    .iter()
                    .map(|a| AggSpec {
                        func: a.func,
                        input: a.input.as_ref().map(|e| e.remap_columns(&|c| c + 2)),
                    })
                    .collect();
                (group_cols, aggs, finalize)
            } else {
                (self.group_cols.clone(), self.aggs.clone(), finalize)
            }
        } else {
            let mut finalize = Vec::with_capacity(self.final_items.len());
            for item in &self.final_items {
                match item {
                    FinalItem::JoinExpr(e) => finalize.push(e.clone()),
                    FinalItem::AggRow(_) => {
                        return Err(SquallError::InvalidPlan(
                            "aggregate SELECT item in a non-aggregate view".into(),
                        ))
                    }
                }
            }
            (Vec::new(), Vec::new(), finalize)
        };
        Ok(ViewPlan {
            group_cols,
            aggs,
            is_aggregate: self.is_aggregate,
            having: self.having.clone(),
            finalize,
            emit_empty_agg: self.is_aggregate && self.group_cols.is_empty() && !self.windowed_agg,
            windowed,
        })
    }

    /// Apply one source's pushed-down work (filter, derived columns,
    /// projection) to externally supplied rows — the transformation the
    /// session's `append`/`retract` path must run before feeding deltas
    /// to a resident view, since the view's join sees post-pushdown rows.
    pub fn transform_source_rows(&self, t: usize, rows: &[Tuple]) -> Result<Vec<Tuple>> {
        self.prepare_table(t, rows)
    }

    /// The `(source name, alias)` pairs of this query's FROM clause, in
    /// relation order — how the session maps a mutated source to the
    /// relation indices of a resident view.
    pub fn source_tables(&self) -> Vec<(&str, &str)> {
        self.tables.iter().map(|t| (t.name.as_str(), t.alias.as_str())).collect()
    }

    /// Execute against the catalog, materializing every row (sorted).
    pub fn execute(&self, catalog: &Catalog, cfg: &ExecConfig) -> Result<ResultSet> {
        match self.prepare_run(catalog, cfg)? {
            Prepared::Local(data) => {
                let rows = self.finalize_local(data)?;
                Ok(ResultSet::materialized(self.out_schema.clone(), rows, None))
            }
            Prepared::Distributed(plan) => {
                let DistributedPlan { spec, data, mcfg } = *plan;
                let report = run_multiway(&spec, data, &mcfg)?;
                if let Some(e) = &report.error {
                    return Err(e.clone());
                }
                let finalizer = self.finalizer();
                let mut rows = Vec::with_capacity(report.results.len());
                for r in &report.results {
                    if !finalizer.passes(r)? {
                        continue;
                    }
                    rows.push(finalizer.project_final(r)?);
                }
                if report.results.is_empty()
                    && self.is_aggregate
                    && self.group_cols.is_empty()
                    && !self.windowed_agg
                {
                    // A per-window global aggregate over zero rows has no
                    // windows, hence no rows — the synthetic COUNT=0 row
                    // is a full-history artifact.
                    rows.extend(finalizer.empty_agg_row()?);
                }
                self.finalize_order(&mut rows);
                Ok(ResultSet::materialized(self.out_schema.clone(), rows, Some(report)))
            }
        }
    }

    /// Execute against the catalog, streaming result rows while the
    /// topology runs. The returned [`ResultSet`] yields rows in production
    /// order through its [`Iterator`] impl without buffering them;
    /// [`ResultSet::report`] becomes available once the stream is
    /// exhausted. A run that fails mid-way ends the stream early —
    /// check [`ResultSet::error`] after exhaustion. Single-table queries
    /// (which run locally) come back materialized, and so do queries with
    /// an ORDER BY or LIMIT — a total order needs every row first.
    pub fn execute_stream(&self, catalog: &Catalog, cfg: &ExecConfig) -> Result<ResultSet> {
        if !self.order_by.is_empty() || self.limit.is_some() {
            return self.execute(catalog, cfg);
        }
        match self.prepare_run(catalog, cfg)? {
            Prepared::Local(data) => {
                let rows = self.finalize_local(data)?;
                Ok(ResultSet::materialized(self.out_schema.clone(), rows, None))
            }
            Prepared::Distributed(plan) => {
                let DistributedPlan { spec, data, mcfg } = *plan;
                let inner = run_multiway_stream(&spec, data, &mcfg)?;
                let stream = QueryStream {
                    inner: Some(inner),
                    finalizer: self.finalizer(),
                    emit_empty_agg: self.is_aggregate
                        && self.group_cols.is_empty()
                        && !self.windowed_agg,
                    saw_rows: false,
                    produced: 0,
                    report: None,
                };
                Ok(ResultSet::streaming(self.out_schema.clone(), stream))
            }
        }
    }

    /// Single-table path: aggregate or project locally.
    fn finalize_local(&self, data: Vec<Tuple>) -> Result<Vec<Tuple>> {
        let finalizer = self.finalizer();
        if self.is_aggregate {
            let mut agg = GroupByAggregator::new(self.group_cols.clone(), self.aggs.clone());
            for t in &data {
                agg.update(t)?;
            }
            let groups = agg.snapshot();
            let had_groups = !groups.is_empty();
            let mut rows = Vec::new();
            for row in groups {
                if !finalizer.passes(&row)? {
                    continue;
                }
                rows.push(finalizer.project_final(&row)?);
            }
            if !had_groups && self.group_cols.is_empty() {
                rows.extend(finalizer.empty_agg_row()?);
            }
            self.finalize_order(&mut rows);
            Ok(rows)
        } else {
            let mut rows = Vec::with_capacity(data.len());
            for t in &data {
                rows.push(finalizer.project_final(t)?);
            }
            self.finalize_order(&mut rows);
            Ok(rows)
        }
    }

    /// Human-readable plan description (the EXPLAIN of the demo UI).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        for t in &self.tables {
            s.push_str(&format!(
                "source {} as {}: keep {:?}{}{}\n",
                t.name,
                t.alias,
                t.kept,
                t.filter.as_ref().map(|f| format!(", filter {f}")).unwrap_or_default(),
                if t.derived.is_empty() {
                    String::new()
                } else {
                    format!(", derive {} expr(s)", t.derived.len())
                },
            ));
        }
        s.push_str(&format!("join atoms: {:?}\n", self.atoms));
        if let Some(w) = &self.window {
            s.push_str(&format!("window: {:?} on ts cols {:?}\n", w.spec, w.ts_cols));
        }
        if self.is_aggregate {
            s.push_str(&format!(
                "aggregate: group by {:?}, {} agg(s){}\n",
                self.group_cols,
                self.aggs.len(),
                if self.windowed_agg {
                    " — per window (window_start, window_end prepended), \
                     group-hash sharded + ordered window merge"
                } else {
                    ""
                }
            ));
        }
        if let Some(h) = &self.having {
            s.push_str(&format!("having: {h}\n"));
        }
        if !self.order_by.is_empty() || self.limit.is_some() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|&(c, desc)| {
                    format!("{}{}", self.out_schema.field(c).name, if desc { " DESC" } else { "" })
                })
                .collect();
            s.push_str(&format!(
                "order/limit: [{}]{}\n",
                keys.join(", "),
                self.limit.map(|n| format!(", limit {n}")).unwrap_or_default()
            ));
        }
        s
    }

    pub fn output_schema(&self) -> &Schema {
        &self.out_schema
    }

    /// Does this plan run as a distributed topology (as opposed to the
    /// local single-table path)?
    pub fn is_distributed(&self) -> bool {
        self.tables.len() > 1
    }

    /// The topology layout this plan executes as under `cfg` —
    /// `(names, parallelism, is_spout)` per node, mirroring the driver's
    /// assembly: one spout per relation, the join component, and the
    /// aggregation component if present. This is what task→peer placement
    /// ([`squall_runtime::plan_placement`]) is computed over when the
    /// session runs on a cluster.
    pub fn node_layout(&self, cfg: &ExecConfig) -> (Vec<String>, Vec<usize>, Vec<bool>) {
        let mut names: Vec<String> =
            self.tables.iter().map(|t| format!("src-{}", t.alias)).collect();
        let mut parallelism = vec![1usize; self.tables.len()];
        let mut is_spout = vec![true; self.tables.len()];
        names.push("join".into());
        parallelism.push(cfg.machines.max(1));
        is_spout.push(false);
        if self.is_aggregate {
            names.push("agg".into());
            // Both modes shard by group hash across agg_parallelism tasks;
            // per-window aggregation adds a single ordered merge sink that
            // restores the window-order contract behind the shards.
            parallelism.push(cfg.agg_parallelism.max(1));
            is_spout.push(false);
            if self.windowed_agg {
                names.push("agg-merge".into());
                parallelism.push(1);
                is_spout.push(false);
            }
        }
        (names, parallelism, is_spout)
    }

    /// Number of FROM relations (in current plan order).
    pub fn n_relations(&self) -> usize {
        self.tables.len()
    }

    /// The join atoms over current relation indices and pruned-local
    /// column coordinates.
    pub fn join_atoms(&self) -> &[JoinAtom] {
        &self.atoms
    }

    /// Relation `t`'s alias (current plan order).
    pub fn alias(&self, t: usize) -> &str {
        &self.tables[t].alias
    }

    /// Relation `t`'s catalog source name (current plan order).
    pub fn source_name(&self, t: usize) -> &str {
        &self.tables[t].name
    }

    /// Relation `t`'s pruned join-input schema.
    pub fn relation_schema(&self, t: usize) -> &Schema {
        &self.tables[t].schema
    }

    /// Map relation `t`'s pruned-local column back to its *source table*
    /// column index — `None` for derived columns, which no catalog
    /// statistics describe.
    pub(crate) fn source_column(&self, t: usize, local: usize) -> Option<usize> {
        let pt = &self.tables[t];
        let orig_arity = pt.orig_columns.len() - pt.derived.len();
        let c = *pt.kept.get(local)?;
        (c < orig_arity).then_some(c)
    }

    /// Estimated post-filter cardinality of relation `t`: the catalog row
    /// count scaled by the pushed filter's selectivity measured over a
    /// bounded prefix sample (2 000 rows).
    pub(crate) fn estimated_base_rows(&self, t: usize, catalog: &Catalog) -> Result<f64> {
        let pt = &self.tables[t];
        let n = catalog.get(&pt.name)?.data.len();
        let Some(f) = &pt.filter else {
            return Ok(n as f64);
        };
        let sample = n.min(2_000);
        if sample == 0 {
            return Ok(0.0);
        }
        let mut pass = 0usize;
        for tuple in catalog.get(&pt.name)?.data.iter().take(sample) {
            // An erroring predicate row counts as filtered, mirroring
            // execution where it fails the run — estimation stays total.
            if f.eval_bool(tuple).unwrap_or(false) {
                pass += 1;
            }
        }
        Ok(n as f64 * pass as f64 / sample as f64)
    }

    /// Every join atom must address a column inside its relation's pruned
    /// join-input schema. Violations get the typed
    /// [`SquallError::PrunedColumnReference`], naming the column —
    /// checked on every execution and re-checked after a join-order
    /// rewrite.
    fn validate_atoms(&self) -> Result<()> {
        for a in &self.atoms {
            for &(t, c) in &[(a.left_rel, a.left_col), (a.right_rel, a.right_col)] {
                let pt = self.tables.get(t).ok_or_else(|| {
                    SquallError::InvalidPlan(format!("join atom references relation #{t}"))
                })?;
                if c >= pt.schema.arity() {
                    return Err(SquallError::PrunedColumnReference {
                        relation: pt.alias.clone(),
                        column: pt.orig_columns.get(c).cloned().unwrap_or_else(|| format!("#{c}")),
                    });
                }
            }
        }
        Ok(())
    }

    /// Rewrite the plan to execute its relations in `order` (indices into
    /// the current order), remapping every join-output coordinate —
    /// group-by columns, aggregate inputs, projection expressions, atom
    /// relation ids and per-relation window metadata — so results are
    /// byte-identical to the original order. HAVING, ORDER BY and
    /// aggregate-row indices address post-aggregation rows, whose layout
    /// the relation order does not affect.
    pub fn apply_order(&mut self, order: &[usize]) -> Result<()> {
        let n = self.tables.len();
        {
            let mut seen = vec![false; n];
            if order.len() != n
                || order.iter().any(|&t| t >= n || std::mem::replace(&mut seen[t], true))
            {
                return Err(SquallError::InvalidPlan(format!(
                    "join order {order:?} is not a permutation of 0..{n}"
                )));
            }
        }
        if order.iter().enumerate().all(|(i, &t)| i == t) {
            return Ok(());
        }
        // Old join-output offsets and the old→new placement.
        let mut old_off = Vec::with_capacity(n);
        {
            let mut off = 0;
            for t in &self.tables {
                old_off.push(off);
                off += t.schema.arity();
            }
        }
        let mut inv = vec![0usize; n];
        for (new_t, &old_t) in order.iter().enumerate() {
            inv[old_t] = new_t;
        }
        let mut new_off_by_old = vec![0usize; n];
        {
            let mut off = 0;
            for &old_t in order {
                new_off_by_old[old_t] = off;
                off += self.tables[old_t].schema.arity();
            }
        }
        let remap = |g: usize| -> usize {
            let t = old_off.iter().rposition(|&o| o <= g).expect("offset");
            new_off_by_old[t] + (g - old_off[t])
        };
        self.tables = order.iter().map(|&t| self.tables[t].clone()).collect();
        for a in &mut self.atoms {
            a.left_rel = inv[a.left_rel];
            a.right_rel = inv[a.right_rel];
        }
        for g in &mut self.group_cols {
            *g = remap(*g);
        }
        for a in &mut self.aggs {
            a.input = a.input.as_ref().map(|e| e.remap_columns(&remap));
        }
        for item in &mut self.final_items {
            if let FinalItem::JoinExpr(e) = item {
                *item = FinalItem::JoinExpr(e.remap_columns(&remap));
            }
        }
        if let Some(w) = &mut self.window {
            w.ts_cols = order.iter().map(|&t| w.ts_cols[t]).collect();
            w.presorted = order.iter().map(|&t| w.presorted[t]).collect();
        }
        self.validate_atoms()
    }

    /// Record the optimizer's decision on this plan (scheme selection in
    /// [`PhysicalQuery::execute`] and the explain table read it).
    pub fn set_decision(&mut self, d: OptimizerDecision) {
        self.decision = Some(d);
    }

    /// The optimizer decision, when [`crate::optimizer::optimize`] ran.
    pub fn decision(&self) -> Option<&OptimizerDecision> {
        self.decision.as_ref()
    }

    /// [`PhysicalQuery::explain`] plus the optimizer block: the chosen
    /// join order with its estimated-vs-actual cardinality table (actuals
    /// from a finished run's [`JoinReport`] task counters, dashed when
    /// `report` is `None`) and the per-scheme cost candidates.
    pub fn explain_with_actuals(&self, report: Option<&JoinReport>) -> String {
        let mut s = self.explain();
        if let Some(d) = &self.decision {
            s.push_str(&d.render(report));
        }
        s
    }
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Col(n) => n.clone(),
        Expr::Agg { func, arg } => match arg {
            Some(a) => format!("{func}({})", display_name(a)),
            None => format!("{func}(*)"),
        },
        Expr::Lit(v) => v.to_string(),
        Expr::Bin { op, lhs, rhs } => {
            format!("({} {op} {})", display_name(lhs), display_name(rhs))
        }
        Expr::Not(x) => format!("NOT {}", display_name(x)),
    }
}

/// Plan + execute in one call, materializing every row. Runs the
/// cost-based optimizer ([`crate::optimizer::optimize`]) between the two
/// unless [`ExecConfig::optimizer`] is `Off`.
pub fn execute_query(q: &Query, catalog: &Catalog, cfg: &ExecConfig) -> Result<ResultSet> {
    let mut plan = PhysicalQuery::plan(q, catalog)?;
    crate::optimizer::optimize(&mut plan, catalog, cfg)?;
    plan.execute(catalog, cfg)
}

/// Plan + execute in one call, streaming rows while the topology runs.
/// Optimized the same way as [`execute_query`].
pub fn execute_query_stream(q: &Query, catalog: &Catalog, cfg: &ExecConfig) -> Result<ResultSet> {
    let mut plan = PhysicalQuery::plan(q, catalog)?;
    crate::optimizer::optimize(&mut plan, catalog, cfg)?;
    plan.execute_stream(catalog, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{agg, col, lit};
    use squall_common::tuple;
    use squall_expr::BinOp;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "R",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![tuple![1, 10], tuple![2, 20], tuple![3, 30], tuple![2, 25]],
        )
        .unwrap();
        c.register(
            "S",
            Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]),
            vec![tuple![2, 100], tuple![3, 200], tuple![4, 300], tuple![2, 150]],
        )
        .unwrap();
        c.register(
            "T",
            Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]),
            vec![tuple![100, 7], tuple![200, 8], tuple![999, 9]],
        )
        .unwrap();
        c
    }

    /// Unsorted event streams: the planner must order spout input by
    /// event time itself.
    fn stream_catalog() -> Catalog {
        let schema = Schema::of(&[("k", DataType::Int), ("ts", DataType::Int)]);
        let mut c = Catalog::new();
        c.register_stream(
            "A",
            schema.clone(),
            vec![tuple![1, 50], tuple![1, 0], tuple![2, 20]],
            "ts",
        )
        .unwrap();
        c.register_stream("B", schema, vec![tuple![2, 25], tuple![1, 8], tuple![1, 49]], "ts")
            .unwrap();
        c
    }

    #[test]
    fn spj_two_way() {
        // SELECT R.b, S.c FROM R, S WHERE R.a = S.a AND R.b > 15.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")).and(col("R.b").gt(lit(15))))
            .select([col("R.b"), col("S.c")]);
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        // R rows with b>15: (2,20),(3,30),(2,25); joins: 2→(100,150), 3→200.
        assert_eq!(
            res.rows(),
            vec![
                tuple![20, 100],
                tuple![20, 150],
                tuple![25, 100],
                tuple![25, 150],
                tuple![30, 200]
            ]
        );
        assert!(res.report().is_some());
    }

    #[test]
    fn three_way_chain_with_count() {
        // SELECT T.d, COUNT(*) FROM R,S,T WHERE R.a=S.a AND S.c=T.c
        // GROUP BY T.d.
        let q = Query::from_tables([("R", "R"), ("S", "S"), ("T", "T")])
            .filter(col("R.a").eq(col("S.a")))
            .filter(col("S.c").eq(col("T.c")))
            .group_by([col("T.d")])
            .select([col("T.d"), agg(AggFunc::Count, None)]);
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        // Joins: R.a=2 (2 rows) × S(2,100),(2,150) ; R.a=3 × S(3,200).
        // T: c=100→d7, c=200→d8. Count d=7: R{2,2}×S(2,100) = 2; d=8:
        // R{3}×S(3,200) = 1.
        assert_eq!(res.rows(), vec![tuple![7, 2], tuple![8, 1]]);
    }

    #[test]
    fn aggregate_without_group_by() {
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .select([agg(AggFunc::Count, None), agg(AggFunc::Sum, Some(col("S.c")))]);
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        // Matches: (2,*)x2 rows R × 2 rows S = 4, (3,*) 1×1 = 1 → 5 rows;
        // sum of S.c over matches: 2-rows contribute (100+150)*2, 3-row 200.
        assert_eq!(res.rows(), vec![tuple![5, 700]]);
    }

    #[test]
    fn expression_join_predicate_derives_column() {
        // SELECT COUNT(*) FROM R, S WHERE 2 * R.a = S.a  → derived column
        // on R (the paper's 2·R.B < S.C shape).
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(lit(2).bin(BinOp::Mul, col("R.a")).eq(col("S.a")))
            .select([agg(AggFunc::Count, None)]);
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        // 2*R.a ∈ {2,4,6,4}; S.a ∈ {2,3,4,2}: matches 2→2 (a=1, two S rows),
        // 4→4 (two R rows a=2 × one S row) = 2+2 = 4.
        assert_eq!(res.rows(), vec![tuple![4]]);
    }

    #[test]
    fn single_table_query_runs_locally() {
        let q = Query::from_tables([("R", "R")])
            .filter(col("R.b").gt(lit(15)))
            .group_by([col("R.a")])
            .select([col("R.a"), agg(AggFunc::Count, None)]);
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        assert_eq!(res.rows(), vec![tuple![2, 2], tuple![3, 1]]);
        assert!(res.report().is_none());
    }

    #[test]
    fn bare_column_names_resolve_when_unique() {
        let q = Query::from_tables([("R", "R"), ("T", "T")])
            .filter(col("b").eq(col("d"))) // R.b and T.d are unique names
            .select([agg(AggFunc::Count, None)]);
        // No matches (b ∈ {10..30}, d ∈ {7,8,9}) but it must plan fine.
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        assert_eq!(res.rows(), vec![tuple![0i64]]);
    }

    #[test]
    fn ambiguous_and_unknown_columns_rejected() {
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("a").eq(lit(1)))
            .select([col("R.b")]);
        assert!(matches!(PhysicalQuery::plan(&q, &catalog()), Err(SquallError::InvalidPlan(_))));
        let q2 = Query::from_tables([("R", "R")]).select([col("R.zzz")]);
        assert!(matches!(PhysicalQuery::plan(&q2, &catalog()), Err(SquallError::UnknownColumn(_))));
    }

    #[test]
    fn non_grouped_column_rejected() {
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .select([col("R.b"), agg(AggFunc::Count, None)]);
        assert!(PhysicalQuery::plan(&q, &catalog()).is_err());
    }

    #[test]
    fn disconnected_join_rejected() {
        let q = Query::from_tables([("R", "R"), ("T", "T")]).select([col("R.a")]);
        let p = PhysicalQuery::plan(&q, &catalog()).unwrap();
        assert!(p.execute(&catalog(), &ExecConfig::default()).is_err());
    }

    #[test]
    fn explain_mentions_pushdown() {
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")).and(col("R.b").gt(lit(15))))
            .select([col("S.c")]);
        let p = PhysicalQuery::plan(&q, &catalog()).unwrap();
        let e = p.explain();
        assert!(e.contains("filter"), "{e}");
        assert!(e.contains("join atoms"), "{e}");
    }

    #[test]
    fn windowed_join_matches_timestamp_oracle() {
        use crate::logical::Window;
        // SELECT A.k, A.ts, B.ts FROM A, B WHERE A.k = B.k WINDOW SLIDING 10.
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::sliding(10))
            .select([col("A.k"), col("A.ts"), col("B.ts")]);
        let mut res = execute_query(&q, &stream_catalog(), &ExecConfig::default()).unwrap();
        // Key + |Δts| ≤ 10 pairs: (1@0,1@8), (1@50,1@49); (2@20,2@25).
        assert_eq!(res.rows(), vec![tuple![1, 0, 8], tuple![1, 50, 49], tuple![2, 20, 25]]);
    }

    #[test]
    fn windowed_plan_keeps_event_time_columns() {
        use crate::logical::Window;
        // Neither ts column is selected or joined on — the window alone
        // must keep them alive through output-scheme pruning.
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::tumbling(10))
            .select([agg(AggFunc::Count, None)]);
        let p = PhysicalQuery::plan(&q, &stream_catalog()).unwrap();
        assert_eq!(p.tables[0].kept, vec![0, 1]);
        assert_eq!(p.tables[1].kept, vec![0, 1]);
        assert!(p.explain().contains("window"));
        // Tumbling width 10: (1@0,1@8) share bucket 0; (2@20,2@25) share
        // bucket 2; (1@50,1@49) split across buckets 5 and 4. With an
        // aggregate under a window the count is *per window*, with the
        // window bounds prepended to the output row.
        let mut res = p.execute(&stream_catalog(), &ExecConfig::default()).unwrap();
        assert_eq!(res.rows(), vec![tuple![0, 9, 1], tuple![20, 29, 1]]);
        assert_eq!(res.schema().field(0).name, "window_start");
        assert_eq!(res.schema().field(1).name, "window_end");
    }

    #[test]
    fn windowed_group_by_emits_per_window_rows() {
        use crate::logical::Window;
        // SELECT A.k, COUNT(*) … WINDOW TUMBLING 10 GROUP BY A.k.
        // In-window pairs: (1@0,1@8) → bucket 0; (2@20,2@25) → bucket 2.
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::tumbling(10))
            .group_by([col("A.k")])
            .select([col("A.k"), agg(AggFunc::Count, None)]);
        let p = PhysicalQuery::plan(&q, &stream_catalog()).unwrap();
        assert!(p.explain().contains("per window"), "{}", p.explain());
        let mut res = p.execute(&stream_catalog(), &ExecConfig::default()).unwrap();
        assert_eq!(res.rows(), vec![tuple![0, 9, 1, 1], tuple![20, 29, 2, 1]]);
        // The streaming path yields the same rows, in window order.
        let streamed: Vec<Tuple> =
            p.execute_stream(&stream_catalog(), &ExecConfig::default()).unwrap().collect();
        assert_eq!(streamed, vec![tuple![0, 9, 1, 1], tuple![20, 29, 2, 1]]);
    }

    #[test]
    fn windowed_sliding_aggregate_overlaps_windows() {
        use crate::logical::Window;
        // Sliding size 10: a pair spanning [lo, hi] lands in every window
        // [s, s+10] containing both, i.e. s ∈ [hi−10 (clamped to 0), lo].
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::sliding(10))
            .group_by([col("A.k")])
            .select([col("A.k"), agg(AggFunc::Count, None)]);
        let mut res = execute_query(&q, &stream_catalog(), &ExecConfig::default()).unwrap();
        let starts: Vec<i64> = res
            .rows()
            .iter()
            .filter(|t| t.get(2) == &Value::Int(1))
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        // Pair (1@0,1@8): start 0 only (negative starts clamp). Pair
        // (1@50,1@49): starts 40..=49 — ten overlapping windows.
        let expected: Vec<i64> = std::iter::once(0).chain(40..=49).collect();
        assert_eq!(starts, expected);
    }

    #[test]
    fn having_filters_per_window_groups() {
        use crate::logical::Window;
        // HAVING COUNT(*) > 1 over per-window groups: only sliding windows
        // containing ≥ 2 pairs survive. With size 30, pairs (1@0,1@8) and
        // (2@20,2@25) co-occupy windows [s, s+30] with s ∈ [0, max(0,..)]…
        // concretely both pairs fit when s ≤ 0 and s+30 ≥ 25 → s = 0 only
        // for groups — but the groups differ (k=1 vs k=2), so COUNT per
        // (window, group) stays 1 and everything is filtered.
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::sliding(30))
            .group_by([col("A.k")])
            .select([col("A.k"), agg(AggFunc::Count, None)])
            .having(agg(AggFunc::Count, None).gt(lit(1)));
        let mut res = execute_query(&q, &stream_catalog(), &ExecConfig::default()).unwrap();
        assert!(res.rows().is_empty(), "{:?}", res.rows());
        // Global per-window count with sliding 60: all five |Δ| ≤ 60
        // pairs fit window 0; windows 1..=8 still hold the three pairs
        // not anchored at ts 0; from s = 9 the count drops to 2 and
        // HAVING > 2 cuts the stream off.
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::sliding(60))
            .select([agg(AggFunc::Count, None)])
            .having(agg(AggFunc::Count, None).gt(lit(2)));
        let mut res = execute_query(&q, &stream_catalog(), &ExecConfig::default()).unwrap();
        let mut expected = vec![tuple![0, 60, 5]];
        expected.extend((1..=8).map(|s| tuple![s, s + 60, 3]));
        assert_eq!(res.rows(), expected);
    }

    #[test]
    fn windowed_global_aggregate_with_no_windows_yields_no_rows() {
        use crate::logical::Window;
        // No join matches at all → no windows → no synthetic COUNT=0 row
        // (that row is a full-history artifact).
        let schema = Schema::of(&[("k", DataType::Int), ("ts", DataType::Int)]);
        let mut c = Catalog::new();
        c.register_stream("A", schema.clone(), vec![tuple![1, 0]], "ts").unwrap();
        c.register_stream("B", schema, vec![tuple![2, 1]], "ts").unwrap();
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::tumbling(10))
            .select([agg(AggFunc::Count, None)]);
        let mut res = execute_query(&q, &c, &ExecConfig::default()).unwrap();
        assert!(res.rows().is_empty());
    }

    #[test]
    fn windowed_aggregate_order_by_window_columns() {
        use crate::logical::Window;
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::tumbling(10))
            .group_by([col("A.k")])
            .select([col("A.k"), agg(AggFunc::Count, None)])
            .order_by("window_start", true)
            .limit(1);
        let mut res = execute_query(&q, &stream_catalog(), &ExecConfig::default()).unwrap();
        assert_eq!(res.rows(), vec![tuple![20, 29, 2, 1]], "latest window first");
    }

    #[test]
    fn window_plan_errors() {
        use crate::logical::Window;
        let c = stream_catalog();
        // Single-relation windowed query.
        let q = Query::from_tables([("A", "A")]).window(Window::sliding(5)).select([col("A.k")]);
        assert!(PhysicalQuery::plan(&q, &c).is_err());
        // Zero-width windows.
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::tumbling(0))
            .select([col("A.k")]);
        assert!(PhysicalQuery::plan(&q, &c).is_err());
        // ON column missing from a relation.
        let q = Query::from_tables([("A", "A"), ("B", "B")])
            .filter(col("A.k").eq(col("B.k")))
            .window(Window::sliding(5).on("nope"))
            .select([col("A.k")]);
        assert!(matches!(PhysicalQuery::plan(&q, &c), Err(SquallError::UnknownColumn(_))));
        // Plain tables without ON: no declared event time.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .window(Window::sliding(5))
            .select([col("R.b")]);
        assert!(matches!(PhysicalQuery::plan(&q, &catalog()), Err(SquallError::InvalidPlan(_))));
    }

    #[test]
    fn having_filters_groups_on_visible_and_hidden_aggregates() {
        // Groups over R⋈S on a: a=2 → 2 R-rows × 2 S-rows = 4; a=3 → 1.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .select([col("R.a"), agg(AggFunc::Count, None)])
            .having(agg(AggFunc::Count, None).gt(lit(1)));
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        assert_eq!(res.rows(), vec![tuple![2, 4]]);

        // The aggregate may be absent from SELECT: it becomes a hidden
        // column (and satisfies the aggregate requirement of GROUP BY).
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .select([col("R.a")])
            .having(agg(AggFunc::Sum, Some(col("S.c"))).gt(lit(300)));
        let p = PhysicalQuery::plan(&q, &catalog()).unwrap();
        assert!(p.explain().contains("having:"), "{}", p.explain());
        let mut res = p.execute(&catalog(), &ExecConfig::default()).unwrap();
        // SUM(S.c): a=2 → (100+150)·2 = 500 > 300; a=3 → 200.
        assert_eq!(res.rows(), vec![tuple![2]]);
    }

    #[test]
    fn having_group_columns_and_single_table_local_path() {
        let q = Query::from_tables([("R", "R")])
            .group_by([col("R.a")])
            .select([col("R.a"), agg(AggFunc::Count, None)])
            .having(col("R.a").gt(lit(1)).and(agg(AggFunc::Count, None).gt(lit(1))));
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        // R.a groups: 1→1, 2→2, 3→1; a>1 AND count>1 keeps only (2, 2).
        assert_eq!(res.rows(), vec![tuple![2, 2]]);
        assert!(res.report().is_none(), "single-table stays local");
    }

    #[test]
    fn having_on_empty_global_aggregate_gates_the_synthetic_row() {
        // No join matches (b ∈ {10..30} vs d ∈ {7,8,9}).
        let base = Query::from_tables([("R", "R"), ("T", "T")])
            .filter(col("R.b").eq(col("T.d")))
            .select([agg(AggFunc::Count, None)]);
        let q = base.clone().having(agg(AggFunc::Count, None).gt(lit(0)));
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        assert!(res.rows().is_empty(), "COUNT = 0 fails HAVING > 0");
        let q = base.having(agg(AggFunc::Count, None).eq(lit(0)));
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        assert_eq!(res.rows(), vec![tuple![0i64]], "COUNT = 0 passes HAVING = 0");
    }

    #[test]
    fn having_errors_are_typed() {
        // Non-aggregate query.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .select([col("R.b")])
            .having(col("R.b").gt(lit(1)));
        assert!(matches!(PhysicalQuery::plan(&q, &catalog()), Err(SquallError::InvalidPlan(_))));
        // Plain column outside GROUP BY.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .select([col("R.a"), agg(AggFunc::Count, None)])
            .having(col("R.b").gt(lit(1)));
        assert!(matches!(PhysicalQuery::plan(&q, &catalog()), Err(SquallError::InvalidPlan(_))));
        // SUM without an argument inside HAVING.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .select([col("R.a"), agg(AggFunc::Count, None)])
            .having(agg(AggFunc::Sum, None).gt(lit(1)));
        assert!(PhysicalQuery::plan(&q, &catalog()).is_err());
    }

    #[test]
    fn having_prunes_keep_hidden_aggregate_inputs_alive() {
        // S.c appears only inside the HAVING aggregate — it must survive
        // output-scheme pruning.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .select([col("R.a")])
            .having(agg(AggFunc::Sum, Some(col("S.c"))).gt(lit(0)));
        let p = PhysicalQuery::plan(&q, &catalog()).unwrap();
        assert_eq!(p.tables[1].kept, vec![0, 1], "S.c shipped for the hidden SUM");
    }

    #[test]
    fn order_by_and_limit_shape_results() {
        // SELECT R.b, S.c FROM R, S WHERE R.a = S.a ORDER BY R.b DESC LIMIT 3.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .select([col("R.b"), col("S.c")])
            .order_by("R.b", true)
            .limit(3);
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        // Full result desc by R.b (ties → whole-row asc):
        // [30,200], [25,100], [25,150], [20,100], [20,150] → first 3.
        assert_eq!(res.rows(), vec![tuple![30, 200], tuple![25, 100], tuple![25, 150]]);
        let p = PhysicalQuery::plan(&q, &catalog()).unwrap();
        assert!(p.explain().contains("order/limit"), "{}", p.explain());
    }

    #[test]
    fn order_by_aggregate_alias() {
        // Heaviest groups first: ORDER BY n DESC on a named COUNT(*).
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .select_as([(col("R.a"), "k"), (agg(AggFunc::Count, None), "n")])
            .order_by("n", true)
            .limit(1);
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        // Groups: a=2 → 2 R-rows × 2 S-rows = 4; a=3 → 1. Top-1 is (2, 4).
        assert_eq!(res.rows(), vec![tuple![2, 4]]);
    }

    #[test]
    fn limit_applies_to_single_table_local_path() {
        let q = Query::from_tables([("R", "R")])
            .select([col("R.a"), col("R.b")])
            .order_by("R.b", true)
            .limit(2);
        let mut res = execute_query(&q, &catalog(), &ExecConfig::default()).unwrap();
        assert_eq!(res.rows(), vec![tuple![3, 30], tuple![2, 25]]);
        let q0 = Query::from_tables([("R", "R")]).select([col("R.a")]).limit(0);
        let mut res = execute_query(&q0, &catalog(), &ExecConfig::default()).unwrap();
        assert!(res.rows().is_empty(), "LIMIT 0 yields no rows");
    }

    #[test]
    fn ordered_queries_stream_as_materialized_results() {
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .select([col("R.b")])
            .order_by("R.b", false)
            .limit(2);
        let p = PhysicalQuery::plan(&q, &catalog()).unwrap();
        let mut res = p.execute_stream(&catalog(), &ExecConfig::default()).unwrap();
        assert!(!res.is_streaming(), "a total order needs every row first");
        assert_eq!(res.rows(), vec![tuple![20], tuple![20]]);
    }

    #[test]
    fn order_by_unknown_or_ambiguous_rejected() {
        let q = Query::from_tables([("R", "R")]).select([col("R.a")]).order_by("zzz", false);
        assert!(matches!(PhysicalQuery::plan(&q, &catalog()), Err(SquallError::UnknownColumn(_))));
        let q = Query::from_tables([("R", "R")])
            .select([col("R.a"), col("R.a")])
            .order_by("R.a", false);
        assert!(matches!(PhysicalQuery::plan(&q, &catalog()), Err(SquallError::InvalidPlan(_))));
    }

    #[test]
    fn output_scheme_prunes_columns() {
        // Only R.a (join key) and S.c (selected) are needed; R.b unused.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .select([col("S.c")]);
        let p = PhysicalQuery::plan(&q, &catalog()).unwrap();
        assert_eq!(p.tables[0].kept, vec![0], "R ships only the join key");
        assert_eq!(p.tables[1].kept, vec![0, 1]);
    }

    #[test]
    fn pruned_column_reference_is_typed_and_named() {
        // R.b is pruned (only the join key R.a survives). Manufacture a
        // plan whose atom still addresses the pruned coordinate — the
        // state a buggy rewrite would leave behind — and every execution
        // surface must reject it with the typed error naming R.b.
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .select([col("S.c")]);
        let mut p = PhysicalQuery::plan(&q, &catalog()).unwrap();
        p.atoms[0].left_col = 1; // past R's pruned arity of 1
        let err = p.execute(&catalog(), &ExecConfig::default()).unwrap_err();
        match &err {
            SquallError::PrunedColumnReference { relation, column } => {
                assert_eq!(relation, "R");
                assert_eq!(column, "R.b");
            }
            other => panic!("expected PrunedColumnReference, got {other:?}"),
        }
        assert!(err.to_string().contains("R.b"), "message names the column: {err}");
        assert!(matches!(
            p.prepare_standing(&catalog(), &ExecConfig::default()),
            Err(SquallError::PrunedColumnReference { .. })
        ));
    }

    #[test]
    fn apply_order_is_result_invariant() {
        // The 3-way chain from `three_way_chain_with_count`, executed
        // under every relation order, must give byte-identical rows.
        let q = Query::from_tables([("R", "R"), ("S", "S"), ("T", "T")])
            .filter(col("R.a").eq(col("S.a")))
            .filter(col("S.c").eq(col("T.c")))
            .group_by([col("T.d")])
            .select([col("T.d"), agg(AggFunc::Count, None)]);
        let cat = catalog();
        let cfg =
            ExecConfig { optimizer: crate::optimizer::OptimizerMode::Off, ..ExecConfig::default() };
        let expected = vec![tuple![7, 2], tuple![8, 1]];
        for order in crate::optimizer::enumerate_orders(
            3,
            PhysicalQuery::plan(&q, &cat).unwrap().join_atoms(),
            usize::MAX,
        ) {
            let mut p = PhysicalQuery::plan(&q, &cat).unwrap();
            p.apply_order(&order).unwrap();
            let mut res = p.execute(&cat, &cfg).unwrap();
            assert_eq!(res.rows(), expected, "order {order:?}");
        }
    }

    #[test]
    fn apply_order_rejects_non_permutations() {
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .select([col("S.c")]);
        let mut p = PhysicalQuery::plan(&q, &catalog()).unwrap();
        assert!(p.apply_order(&[0]).is_err());
        assert!(p.apply_order(&[0, 0]).is_err());
        assert!(p.apply_order(&[0, 2]).is_err());
        assert!(p.apply_order(&[1, 0]).is_ok());
    }

    #[test]
    fn optimizer_modes_agree_on_results() {
        let q = Query::from_tables([("R", "R"), ("S", "S"), ("T", "T")])
            .filter(col("R.a").eq(col("S.a")))
            .filter(col("S.c").eq(col("T.c")))
            .select([col("R.b"), col("T.d")]);
        let cat = catalog();
        let mut expected = None;
        for mode in [
            crate::optimizer::OptimizerMode::Off,
            crate::optimizer::OptimizerMode::On,
            crate::optimizer::OptimizerMode::Exhaustive,
        ] {
            let cfg = ExecConfig { optimizer: mode, ..ExecConfig::default() };
            let mut res = execute_query(&q, &cat, &cfg).unwrap();
            let rows = res.rows().to_vec();
            match &expected {
                None => expected = Some(rows),
                Some(e) => assert_eq!(&rows, e, "mode {mode}"),
            }
        }
    }

    #[test]
    fn explain_with_actuals_prints_estimate_table() {
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")))
            .select([col("R.b"), col("S.c")]);
        let cat = catalog();
        let cfg = ExecConfig::default();
        let mut p = PhysicalQuery::plan(&q, &cat).unwrap();
        crate::optimizer::optimize(&mut p, &cat, &cfg).unwrap();
        let d = p.decision().expect("optimizer ran");
        assert_eq!(d.steps.len(), 2);
        let dry = p.explain_with_actuals(None);
        assert!(dry.contains("est rows"), "{dry}");
        assert!(dry.contains('—'), "actuals dashed before the run: {dry}");
        let mut res = p.execute(&cat, &cfg).unwrap();
        res.rows();
        let report = res.report().expect("distributed run has a report");
        let counts = report.input_counts.clone();
        let wet = p.explain_with_actuals(Some(report));
        assert!(wet.contains("actual rows"), "{wet}");
        assert!(!counts.is_empty(), "driver counts per-relation input");
        for c in &counts {
            assert!(wet.contains(&c.to_string()), "actual {c} rendered: {wet}");
        }
    }
}
