//! The catalog: a unified registry of *sources* — materialized tables and
//! timestamped streams — with schemas and (in this in-process engine)
//! their data.
//!
//! Streams differ from tables in exactly one declaration: an **event-time
//! column** (an Int column, non-negative values) that windowed queries
//! measure their windows on and that spouts emit in ascending order.

use std::sync::Arc;

use squall_common::{DataType, FxHashMap, Result, Schema, SquallError, Tuple, Value};
use squall_partition::stats::{collect_table_stats, TableStats};

/// How a registered source behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// A materialized relation (full-history semantics).
    Table,
    /// A timestamped stream; `time_col` indexes the declared event-time
    /// column within the source schema.
    Stream { time_col: usize },
}

/// One registered source (table or stream).
#[derive(Debug, Clone)]
pub struct SourceDef {
    pub name: String,
    pub schema: Schema,
    pub data: Arc<Vec<Tuple>>,
    pub kind: SourceKind,
}

impl SourceDef {
    /// The declared event-time column, if this source is a stream.
    pub fn event_time_col(&self) -> Option<usize> {
        match self.kind {
            SourceKind::Table => None,
            SourceKind::Stream { time_col } => Some(time_col),
        }
    }

    pub fn is_stream(&self) -> bool {
        matches!(self.kind, SourceKind::Stream { .. })
    }
}

/// A set of registered sources the planner resolves names against.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    sources: Vec<SourceDef>,
    /// Sampling-based statistics per source name, populated by
    /// [`Catalog::analyze`] — the cardinality/selectivity inputs of the
    /// join-order DP. Absent entries fall back to uniform assumptions.
    stats: FxHashMap<String, TableStats>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a materialized table. Rejects duplicate source names and
    /// data that does not match the schema arity with a typed error.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        data: Vec<Tuple>,
    ) -> Result<()> {
        let name = name.into();
        self.validate_new(&name, &schema, &data)?;
        self.sources.push(SourceDef {
            name,
            schema,
            data: Arc::new(data),
            kind: SourceKind::Table,
        });
        Ok(())
    }

    /// Register a timestamped stream with a declared event-time column.
    ///
    /// Beyond the [`Catalog::register`] checks, the event-time column must
    /// exist, be declared `Int`, and every tuple must carry a non-negative
    /// Int timestamp there — rejected with a typed error instead of a
    /// panic deep inside a later run.
    pub fn register_stream(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        data: Vec<Tuple>,
        time_col: &str,
    ) -> Result<()> {
        let name = name.into();
        self.validate_new(&name, &schema, &data)?;
        let invalid = |reason: String| SquallError::InvalidSource { source: name.clone(), reason };
        let col = schema
            .index_of(time_col)
            .map_err(|_| invalid(format!("event-time column {time_col} not in schema {schema}")))?;
        if schema.field(col).data_type != DataType::Int {
            return Err(invalid(format!(
                "event-time column {time_col} must be Int, is {}",
                schema.field(col).data_type
            )));
        }
        for t in &data {
            match t.get(col) {
                Value::Int(v) if *v >= 0 => {}
                other => {
                    return Err(invalid(format!(
                        "event-time column {time_col} must hold non-negative Int values, \
                         found {other:?}"
                    )))
                }
            }
        }
        // Stream data is stored in event-time order once, so windowed
        // queries on the declared column need no per-run sort and spouts
        // emit in event-time order for free.
        let mut data = data;
        data.sort_by_key(|t| t.get(col).as_int().expect("validated above"));
        self.sources.push(SourceDef {
            name,
            schema,
            data: Arc::new(data),
            kind: SourceKind::Stream { time_col: col },
        });
        Ok(())
    }

    fn validate_new(&self, name: &str, schema: &Schema, data: &[Tuple]) -> Result<()> {
        if self.sources.iter().any(|s| s.name == name) {
            return Err(SquallError::DuplicateSource(name.to_string()));
        }
        if let Some(t) = data.iter().find(|t| t.arity() != schema.arity()) {
            return Err(SquallError::InvalidSource {
                source: name.to_string(),
                reason: format!(
                    "tuple arity {} does not match schema arity {}",
                    t.arity(),
                    schema.arity()
                ),
            });
        }
        Ok(())
    }

    /// Append rows to a registered source (the catalog half of feeding a
    /// standing view). Arity is validated like at registration; for
    /// streams, every appended row's event-time must also be ≥ the
    /// current maximum (spouts promise ascending event time, and appended
    /// rows are emitted after everything already stored).
    pub fn append(&mut self, name: &str, rows: Vec<Tuple>) -> Result<()> {
        let src = self
            .sources
            .iter_mut()
            .find(|s| s.name == name)
            .ok_or_else(|| SquallError::UnknownRelation(name.to_string()))?;
        let invalid =
            |reason: String| SquallError::InvalidSource { source: name.to_string(), reason };
        if let Some(t) = rows.iter().find(|t| t.arity() != src.schema.arity()) {
            return Err(invalid(format!(
                "appended tuple arity {} does not match schema arity {}",
                t.arity(),
                src.schema.arity()
            )));
        }
        if let SourceKind::Stream { time_col } = src.kind {
            let floor =
                src.data.iter().map(|t| t.get(time_col).as_int().unwrap_or(0)).max().unwrap_or(0);
            let mut rows = rows;
            for t in &rows {
                match t.get(time_col) {
                    Value::Int(v) if *v >= floor => {}
                    Value::Int(v) => {
                        return Err(invalid(format!(
                            "appended event time {v} is behind the stream's watermark {floor}"
                        )))
                    }
                    other => {
                        return Err(invalid(format!(
                            "event-time column must hold non-negative Int values, found {other:?}"
                        )))
                    }
                }
            }
            rows.sort_by_key(|t| t.get(time_col).as_int().expect("validated above"));
            Arc::make_mut(&mut src.data).extend(rows);
        } else {
            Arc::make_mut(&mut src.data).extend(rows);
        }
        Ok(())
    }

    /// Remove rows from a registered table, one stored occurrence per
    /// given row. Streams are append-only (their event-time contract has
    /// no room for retraction); a row that is not present is a typed
    /// error — retracting what was never stored would silently corrupt
    /// every standing view over the source.
    pub fn retract(&mut self, name: &str, rows: &[Tuple]) -> Result<()> {
        let src = self
            .sources
            .iter_mut()
            .find(|s| s.name == name)
            .ok_or_else(|| SquallError::UnknownRelation(name.to_string()))?;
        let invalid =
            |reason: String| SquallError::InvalidSource { source: name.to_string(), reason };
        if src.is_stream() {
            return Err(invalid("streams are append-only; cannot retract".to_string()));
        }
        let data = Arc::make_mut(&mut src.data);
        for row in rows {
            match data.iter().position(|t| t == row) {
                Some(i) => {
                    data.swap_remove(i);
                }
                None => return Err(invalid(format!("cannot retract row {row}: not in the table"))),
            }
        }
        Ok(())
    }

    /// Drop a source; returns whether it existed. Re-registering under the
    /// same name requires deregistering first (duplicates are rejected).
    /// Collected statistics for the source are dropped with it.
    pub fn deregister(&mut self, name: &str) -> bool {
        let before = self.sources.len();
        self.sources.retain(|s| s.name != name);
        self.stats.remove(name);
        self.sources.len() != before
    }

    /// Collect sampling-based statistics for a registered source
    /// (per-column distinct counts and top-key frequencies over at most
    /// `sample_cap` rows, deterministic under `seed`) and store them for
    /// the planner's join-order DP. Returns the collected stats.
    ///
    /// Stats are a snapshot: [`Catalog::append`] / [`Catalog::retract`]
    /// do not refresh them — re-analyze after bulk changes.
    pub fn analyze(&mut self, name: &str, sample_cap: usize, seed: u64) -> Result<&TableStats> {
        let src = self.get(name)?;
        let stats = collect_table_stats(&src.data, src.schema.arity(), sample_cap, seed);
        self.stats.insert(name.to_string(), stats);
        Ok(self.stats.get(name).expect("just inserted"))
    }

    /// Statistics previously collected by [`Catalog::analyze`], if any.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(name)
    }

    pub fn get(&self, name: &str) -> Result<&SourceDef> {
        self.sources
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| SquallError::UnknownRelation(name.to_string()))
    }

    pub fn names(&self) -> Vec<&str> {
        self.sources.iter().map(|t| t.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, DataType};

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register("R", Schema::of(&[("a", DataType::Int)]), vec![tuple![1], tuple![2]]).unwrap();
        assert_eq!(c.get("R").unwrap().data.len(), 2);
        assert!(!c.get("R").unwrap().is_stream());
        assert!(c.get("S").is_err());
        assert_eq!(c.names(), vec!["R"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.register("R", Schema::of(&[("a", DataType::Int)]), vec![tuple![1]]).unwrap();
        let dup = c.register("R", Schema::of(&[("a", DataType::Int)]), vec![tuple![2]]);
        assert!(matches!(dup, Err(SquallError::DuplicateSource(_))));
        // Streams share the same namespace.
        let dup2 = c.register_stream("R", Schema::of(&[("ts", DataType::Int)]), vec![], "ts");
        assert!(matches!(dup2, Err(SquallError::DuplicateSource(_))));
        // Deregistering frees the name.
        assert!(c.deregister("R"));
        assert!(!c.deregister("R"));
        c.register("R", Schema::of(&[("a", DataType::Int)]), vec![tuple![1], tuple![2]]).unwrap();
        assert_eq!(c.get("R").unwrap().data.len(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut c = Catalog::new();
        let bad = c.register(
            "R",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![tuple![1, 2], tuple![3]],
        );
        assert!(matches!(bad, Err(SquallError::InvalidSource { .. })));
    }

    #[test]
    fn stream_registration_declares_event_time() {
        let mut c = Catalog::new();
        c.register_stream(
            "clicks",
            Schema::of(&[("ad", DataType::Int), ("ts", DataType::Int)]),
            vec![tuple![1, 10], tuple![2, 11]],
            "ts",
        )
        .unwrap();
        let def = c.get("clicks").unwrap();
        assert!(def.is_stream());
        assert_eq!(def.event_time_col(), Some(1));
    }

    #[test]
    fn append_and_retract_mutate_tables() {
        let mut c = Catalog::new();
        c.register("R", Schema::of(&[("a", DataType::Int)]), vec![tuple![1], tuple![1]]).unwrap();
        c.append("R", vec![tuple![2]]).unwrap();
        assert_eq!(c.get("R").unwrap().data.len(), 3);
        // One occurrence per retracted row, duplicates stay.
        c.retract("R", &[tuple![1]]).unwrap();
        assert_eq!(c.get("R").unwrap().data.len(), 2);
        // Absent rows are a typed error.
        let missing = c.retract("R", &[tuple![99]]);
        assert!(matches!(missing, Err(SquallError::InvalidSource { .. })));
        // Arity still validated on append.
        let bad = c.append("R", vec![tuple![1, 2]]);
        assert!(matches!(bad, Err(SquallError::InvalidSource { .. })));
    }

    #[test]
    fn stream_appends_are_monotonic_and_retract_free() {
        let mut c = Catalog::new();
        let s = Schema::of(&[("ad", DataType::Int), ("ts", DataType::Int)]);
        c.register_stream("clicks", s, vec![tuple![1, 10]], "ts").unwrap();
        c.append("clicks", vec![tuple![2, 12], tuple![3, 11]]).unwrap();
        // Stored sorted by event time.
        let data = &c.get("clicks").unwrap().data;
        assert_eq!(data.as_slice(), &[tuple![1, 10], tuple![3, 11], tuple![2, 12]]);
        // Event time may not regress behind the stored maximum.
        let late = c.append("clicks", vec![tuple![4, 5]]);
        assert!(matches!(late, Err(SquallError::InvalidSource { .. })));
        // Streams are append-only.
        let retract = c.retract("clicks", &[tuple![1, 10]]);
        assert!(matches!(retract, Err(SquallError::InvalidSource { .. })));
    }

    #[test]
    fn stream_event_time_column_validated() {
        let schema = Schema::of(&[("ad", DataType::Int), ("ts", DataType::Int)]);
        let mut c = Catalog::new();
        // Missing column.
        let missing = c.register_stream("s1", schema.clone(), vec![], "when");
        assert!(matches!(missing, Err(SquallError::InvalidSource { .. })));
        // Non-Int declared type.
        let str_schema = Schema::of(&[("ad", DataType::Int), ("ts", DataType::Str)]);
        let non_int = c.register_stream("s2", str_schema, vec![], "ts");
        assert!(matches!(non_int, Err(SquallError::InvalidSource { .. })));
        // Non-Int or negative values.
        let bad_val = c.register_stream("s3", schema.clone(), vec![tuple![1, "late"]], "ts");
        assert!(matches!(bad_val, Err(SquallError::InvalidSource { .. })));
        let negative = c.register_stream("s4", schema, vec![tuple![1, -5]], "ts");
        assert!(matches!(negative, Err(SquallError::InvalidSource { .. })));
    }
}
