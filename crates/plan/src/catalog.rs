//! The catalog: named relations with schemas and (in this in-process
//! engine) their data.

use std::sync::Arc;

use squall_common::{Result, Schema, SquallError, Tuple};

/// One registered relation.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub name: String,
    pub schema: Schema,
    pub data: Arc<Vec<Tuple>>,
}

/// A set of registered relations the planner resolves names against.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: Vec<TableDef>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register (or replace) a relation.
    pub fn register(&mut self, name: impl Into<String>, schema: Schema, data: Vec<Tuple>) {
        let name = name.into();
        debug_assert!(
            data.iter().all(|t| t.arity() == schema.arity()),
            "data must match schema arity"
        );
        self.tables.retain(|t| t.name != name);
        self.tables.push(TableDef { name, schema, data: Arc::new(data) });
    }

    pub fn get(&self, name: &str) -> Result<&TableDef> {
        self.tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| SquallError::UnknownRelation(name.to_string()))
    }

    pub fn names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, DataType};

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register("R", Schema::of(&[("a", DataType::Int)]), vec![tuple![1], tuple![2]]);
        assert_eq!(c.get("R").unwrap().data.len(), 2);
        assert!(c.get("S").is_err());
        assert_eq!(c.names(), vec!["R"]);
    }

    #[test]
    fn reregister_replaces() {
        let mut c = Catalog::new();
        c.register("R", Schema::of(&[("a", DataType::Int)]), vec![tuple![1]]);
        c.register("R", Schema::of(&[("a", DataType::Int)]), vec![tuple![1], tuple![2]]);
        assert_eq!(c.get("R").unwrap().data.len(), 2);
        assert_eq!(c.names().len(), 1);
    }
}
