//! # squall-plan
//!
//! Logical query plans and Squall's query optimizer (§2).
//!
//! A [`logical::Query`] is a select-project-join-aggregate block built by
//! name — the programmatic counterpart of the paper's *functional*
//! interface ("a modern Scala collections API"); the SQL interface
//! (`squall-sql`) parses into the same structure. The optimizer then does
//! what §2 describes:
//!
//! * **selection pushdown** — single-table conjuncts move into the source
//!   components;
//! * **output-scheme pruning** — each component ships only the columns
//!   needed downstream ("each component decides on its output scheme based
//!   on the fields/expressions that are needed downstream");
//! * **statistics & skew detection** — post-selection join-key samples are
//!   sketched ([`squall_partition::SkewEstimate`]) to set the skew flags
//!   the Hybrid-Hypercube needs (§3.4);
//! * **scheme & parallelism selection** — Hybrid-Hypercube by default
//!   (it subsumes Hash and Random, §3.1), with the join parallelism from
//!   the execution config.
//!
//! [`physical::PhysicalQuery::execute`] runs the result on the
//! `squall-runtime` substrate via `squall-core`'s driver.

pub mod catalog;
pub mod logical;
pub mod optimizer;
pub mod physical;

pub use catalog::{Catalog, SourceDef, SourceKind};
pub use logical::{agg, col, lit, Expr, Query, Window, WindowKind};
pub use optimizer::{
    enumerate_orders, optimize, JoinStep, OptimizerDecision, OptimizerMode, SchemeChoice,
};
pub use physical::{ExecConfig, PhysicalQuery, ResultSet};
