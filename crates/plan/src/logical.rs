//! Name-based logical expressions and the query block — the functional
//! interface (§2: "a modern Scala collections API" analog in Rust).
//!
//! ```
//! use squall_plan::{col, lit, Query, agg};
//! use squall_expr::{AggFunc, BinOp};
//!
//! // SELECT W1.FromUrl, COUNT(*) FROM WebGraph W1, WebGraph W2
//! // WHERE W1.ToUrl = W2.FromUrl GROUP BY W1.FromUrl
//! let q = Query::from_tables([("WebGraph", "W1"), ("WebGraph", "W2")])
//!     .filter(col("W1.ToUrl").eq(col("W2.FromUrl")))
//!     .group_by([col("W1.FromUrl")])
//!     .select([col("W1.FromUrl"), agg(AggFunc::Count, None)]);
//! assert_eq!(q.tables.len(), 2);
//! ```

use squall_common::Value;
use squall_expr::{AggFunc, BinOp};

/// An unresolved (name-based) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference: `"alias.column"` or a bare, unambiguous
    /// `"column"`.
    Col(String),
    Lit(Value),
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Not(Box<Expr>),
    /// Aggregate call — legal only in the SELECT list.
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin { op, lhs: Box::new(self), rhs: Box::new(rhs) }
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }

    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }

    /// Column names referenced (aggregate args included).
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Bin { lhs, rhs, .. } => {
                lhs.columns(out);
                rhs.columns(out);
            }
            Expr::Not(e) => e.columns(out),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.columns(out);
                }
            }
        }
    }

    /// Does the expression contain an aggregate call?
    pub fn has_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Bin { lhs, rhs, .. } => lhs.has_agg() || rhs.has_agg(),
            Expr::Not(e) => e.has_agg(),
            _ => false,
        }
    }
}

/// `col("W1.FromUrl")`.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// `lit(3)`, `lit("blogspot.com")`.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

/// `agg(AggFunc::Count, None)`, `agg(AggFunc::Sum, Some(col("T.E")))`.
pub fn agg(func: AggFunc, arg: Option<Expr>) -> Expr {
    Expr::Agg { func, arg: arg.map(Box::new) }
}

/// One select-project-join-aggregate block.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// `(table name, alias)` in FROM order.
    pub tables: Vec<(String, String)>,
    /// WHERE conjuncts.
    pub filters: Vec<Expr>,
    /// SELECT items with optional output names.
    pub select: Vec<(Expr, Option<String>)>,
    /// GROUP BY column references.
    pub group_by: Vec<Expr>,
}

impl Query {
    /// `FROM t1 a1, t2 a2, …`; pass the table name twice to use it as its
    /// own alias.
    pub fn from_tables<'a>(tables: impl IntoIterator<Item = (&'a str, &'a str)>) -> Query {
        Query {
            tables: tables.into_iter().map(|(t, a)| (t.to_string(), a.to_string())).collect(),
            ..Query::default()
        }
    }

    /// Add a WHERE conjunct (ANDs decompose into several `filter` calls or
    /// one `and` expression — both classify identically).
    pub fn filter(mut self, e: Expr) -> Query {
        // Flatten top-level ANDs so pushdown sees the conjuncts.
        fn flatten(e: Expr, out: &mut Vec<Expr>) {
            match e {
                Expr::Bin { op: BinOp::And, lhs, rhs } => {
                    flatten(*lhs, out);
                    flatten(*rhs, out);
                }
                other => out.push(other),
            }
        }
        flatten(e, &mut self.filters);
        self
    }

    pub fn select(mut self, items: impl IntoIterator<Item = Expr>) -> Query {
        self.select = items.into_iter().map(|e| (e, None)).collect();
        self
    }

    pub fn select_as<'a>(mut self, items: impl IntoIterator<Item = (Expr, &'a str)>) -> Query {
        self.select = items.into_iter().map(|(e, n)| (e, Some(n.to_string()))).collect();
        self
    }

    pub fn group_by(mut self, cols: impl IntoIterator<Item = Expr>) -> Query {
        self.group_by = cols.into_iter().collect();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")).and(col("R.b").gt(lit(3))))
            .group_by([col("R.a")])
            .select([col("R.a"), agg(AggFunc::Count, None)]);
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.filters.len(), 2, "AND flattens into conjuncts");
        assert_eq!(q.select.len(), 2);
        assert!(q.select[1].0.has_agg());
    }

    #[test]
    fn expr_columns_dedup() {
        let e = col("R.a").eq(col("S.a")).and(col("R.a").gt(lit(1)));
        let mut cols = vec![];
        e.columns(&mut cols);
        assert_eq!(cols, vec!["R.a".to_string(), "S.a".to_string()]);
    }

    #[test]
    fn agg_detection() {
        assert!(agg(AggFunc::Sum, Some(col("x"))).has_agg());
        assert!(!col("x").has_agg());
    }
}
