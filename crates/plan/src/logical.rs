//! Name-based logical expressions and the query block — the functional
//! interface (§2: "a modern Scala collections API" analog in Rust).
//!
//! ```
//! use squall_plan::{col, lit, Query, agg};
//! use squall_expr::{AggFunc, BinOp};
//!
//! // SELECT W1.FromUrl, COUNT(*) FROM WebGraph W1, WebGraph W2
//! // WHERE W1.ToUrl = W2.FromUrl GROUP BY W1.FromUrl
//! let q = Query::from_tables([("WebGraph", "W1"), ("WebGraph", "W2")])
//!     .filter(col("W1.ToUrl").eq(col("W2.FromUrl")))
//!     .group_by([col("W1.FromUrl")])
//!     .select([col("W1.FromUrl"), agg(AggFunc::Count, None)]);
//! assert_eq!(q.tables.len(), 2);
//! ```

use squall_common::Value;
use squall_expr::{AggFunc, BinOp};

/// An unresolved (name-based) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference: `"alias.column"` or a bare, unambiguous
    /// `"column"`.
    Col(String),
    Lit(Value),
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Not(Box<Expr>),
    /// Aggregate call — legal only in the SELECT list.
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin { op, lhs: Box::new(self), rhs: Box::new(rhs) }
    }

    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }

    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }

    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }

    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }

    /// Column names referenced (aggregate args included).
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            Expr::Lit(_) => {}
            Expr::Bin { lhs, rhs, .. } => {
                lhs.columns(out);
                rhs.columns(out);
            }
            Expr::Not(e) => e.columns(out),
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.columns(out);
                }
            }
        }
    }

    /// Does the expression contain an aggregate call?
    pub fn has_agg(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Bin { lhs, rhs, .. } => lhs.has_agg() || rhs.has_agg(),
            Expr::Not(e) => e.has_agg(),
            _ => false,
        }
    }
}

/// `col("W1.FromUrl")`.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// `lit(3)`, `lit("blogspot.com")`.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

/// `agg(AggFunc::Count, None)`, `agg(AggFunc::Sum, Some(col("T.E")))`.
pub fn agg(func: AggFunc, arg: Option<Expr>) -> Expr {
    Expr::Agg { func, arg: arg.map(Box::new) }
}

/// Window shape at the logical level (§2: tumbling and sliding windows on
/// top of the full-history engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Non-overlapping buckets of `width` time units: tuples join only
    /// within the same bucket `⌊ts/width⌋`.
    Tumbling { width: u64 },
    /// Tuples join while their timestamps are within `size` of each other.
    Sliding { size: u64 },
}

/// Window semantics for a query block: a shape plus (optionally) the
/// event-time column it is measured on.
///
/// With an explicit `.on("ts")` every relation in the query must expose a
/// column of that (unqualified) name. Without it, every relation must be a
/// registered *stream* with a declared event-time column
/// (`Session::register_stream` / `Catalog::register_stream`).
///
/// ```
/// use squall_plan::{col, Query, Window};
/// let q = Query::from_tables([("impressions", "I"), ("clicks", "C")])
///     .filter(col("I.ad_id").eq(col("C.ad_id")))
///     .window(Window::sliding(30).on("ts"))
///     .select([col("I.ad_id")]);
/// assert!(q.window.is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    pub kind: WindowKind,
    /// Unqualified event-time column name; `None` defers to each source's
    /// declared event-time column.
    pub time_col: Option<String>,
}

impl Window {
    /// A sliding window: tuples within `size` time units join.
    pub fn sliding(size: u64) -> Window {
        Window { kind: WindowKind::Sliding { size }, time_col: None }
    }

    /// A tumbling window of `width` time units.
    pub fn tumbling(width: u64) -> Window {
        Window { kind: WindowKind::Tumbling { width }, time_col: None }
    }

    /// Measure the window on this (unqualified) column of every relation.
    pub fn on(mut self, time_col: impl Into<String>) -> Window {
        self.time_col = Some(time_col.into());
        self
    }
}

/// One ORDER BY key: an output column (SELECT alias or display name) and
/// its direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    pub column: String,
    pub desc: bool,
}

/// One select-project-join-aggregate block.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// `(table name, alias)` in FROM order.
    pub tables: Vec<(String, String)>,
    /// WHERE conjuncts.
    pub filters: Vec<Expr>,
    /// SELECT items with optional output names.
    pub select: Vec<(Expr, Option<String>)>,
    /// GROUP BY column references.
    pub group_by: Vec<Expr>,
    /// HAVING conjuncts over the aggregate output (may reference GROUP BY
    /// columns and aggregate calls, including aggregates not in SELECT).
    pub having: Vec<Expr>,
    /// Window semantics; `None` = full history.
    pub window: Option<Window>,
    /// ORDER BY keys over the *output* columns, applied in sequence (ties
    /// beyond the keys break on the full row, so results stay
    /// deterministic). Empty = the engine's default whole-row order.
    pub order_by: Vec<OrderKey>,
    /// LIMIT: keep only the first `n` rows of the (ordered) result.
    pub limit: Option<u64>,
}

impl Query {
    /// `FROM t1 a1, t2 a2, …`; pass the table name twice to use it as its
    /// own alias.
    pub fn from_tables<'a>(tables: impl IntoIterator<Item = (&'a str, &'a str)>) -> Query {
        Query {
            tables: tables.into_iter().map(|(t, a)| (t.to_string(), a.to_string())).collect(),
            ..Query::default()
        }
    }

    /// Add a WHERE conjunct (ANDs decompose into several `filter` calls or
    /// one `and` expression — both classify identically).
    pub fn filter(mut self, e: Expr) -> Query {
        // Flatten top-level ANDs so pushdown sees the conjuncts.
        fn flatten(e: Expr, out: &mut Vec<Expr>) {
            match e {
                Expr::Bin { op: BinOp::And, lhs, rhs } => {
                    flatten(*lhs, out);
                    flatten(*rhs, out);
                }
                other => out.push(other),
            }
        }
        flatten(e, &mut self.filters);
        self
    }

    pub fn select(mut self, items: impl IntoIterator<Item = Expr>) -> Query {
        self.select = items.into_iter().map(|e| (e, None)).collect();
        self
    }

    pub fn select_as<'a>(mut self, items: impl IntoIterator<Item = (Expr, &'a str)>) -> Query {
        self.select = items.into_iter().map(|(e, n)| (e, Some(n.to_string()))).collect();
        self
    }

    pub fn group_by(mut self, cols: impl IntoIterator<Item = Expr>) -> Query {
        self.group_by = cols.into_iter().collect();
        self
    }

    /// Add a HAVING conjunct over the aggregate output (top-level ANDs
    /// flatten, exactly like [`Query::filter`]).
    pub fn having(mut self, e: Expr) -> Query {
        fn flatten(e: Expr, out: &mut Vec<Expr>) {
            match e {
                Expr::Bin { op: BinOp::And, lhs, rhs } => {
                    flatten(*lhs, out);
                    flatten(*rhs, out);
                }
                other => out.push(other),
            }
        }
        flatten(e, &mut self.having);
        self
    }

    /// Apply window semantics (tumbling or sliding) to the block.
    pub fn window(mut self, w: Window) -> Query {
        self.window = Some(w);
        self
    }

    /// Append an ORDER BY key (`desc = true` for descending). `column`
    /// names an output column: a SELECT alias or the item's display name.
    pub fn order_by(mut self, column: impl Into<String>, desc: bool) -> Query {
        self.order_by.push(OrderKey { column: column.into(), desc });
        self
    }

    /// Keep only the first `n` rows of the (ordered) result.
    pub fn limit(mut self, n: u64) -> Query {
        self.limit = Some(n);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let q = Query::from_tables([("R", "R"), ("S", "S")])
            .filter(col("R.a").eq(col("S.a")).and(col("R.b").gt(lit(3))))
            .group_by([col("R.a")])
            .select([col("R.a"), agg(AggFunc::Count, None)]);
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.filters.len(), 2, "AND flattens into conjuncts");
        assert_eq!(q.select.len(), 2);
        assert!(q.select[1].0.has_agg());
    }

    #[test]
    fn expr_columns_dedup() {
        let e = col("R.a").eq(col("S.a")).and(col("R.a").gt(lit(1)));
        let mut cols = vec![];
        e.columns(&mut cols);
        assert_eq!(cols, vec!["R.a".to_string(), "S.a".to_string()]);
    }

    #[test]
    fn agg_detection() {
        assert!(agg(AggFunc::Sum, Some(col("x"))).has_agg());
        assert!(!col("x").has_agg());
    }
}
