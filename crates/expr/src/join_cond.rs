//! 2-way join conditions.
//!
//! A condition is a conjunction of *equi pairs* (`L.a = R.b`) and *theta
//! atoms* (`f(L) op g(R)`, e.g. the paper's `2·R.B < S.C`). The split
//! matters operationally: equi pairs admit hash partitioning and hash
//! indexes, theta atoms need 1-Bucket/range partitioning and BTree indexes
//! (§3.1, §3.3).

use squall_common::{Result, Tuple, Value};

use crate::scalar::{BinOp, ScalarExpr};

/// Comparison operators allowed in theta atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, l: &Value, r: &Value) -> bool {
        let ord = l.cmp(r);
        match self {
            CmpOp::Eq => ord == std::cmp::Ordering::Equal,
            CmpOp::Ne => ord != std::cmp::Ordering::Equal,
            CmpOp::Lt => ord == std::cmp::Ordering::Less,
            CmpOp::Le => ord != std::cmp::Ordering::Greater,
            CmpOp::Gt => ord == std::cmp::Ordering::Greater,
            CmpOp::Ge => ord != std::cmp::Ordering::Less,
        }
    }

    /// Mirror the operator (swap sides): `a < b` ⇔ `b > a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    pub fn from_binop(op: BinOp) -> Option<CmpOp> {
        Some(match op {
            BinOp::Eq => CmpOp::Eq,
            BinOp::Ne => CmpOp::Ne,
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// One non-equi conjunct `left_expr(L) op right_expr(R)`, where `left_expr`
/// is evaluated over the left tuple and `right_expr` over the right tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct ThetaAtom {
    pub left: ScalarExpr,
    pub op: CmpOp,
    pub right: ScalarExpr,
}

/// A conjunction of equi pairs and theta atoms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JoinCondition {
    /// `(left column, right column)` equality pairs.
    pub equi: Vec<(usize, usize)>,
    /// Non-equi conjuncts.
    pub theta: Vec<ThetaAtom>,
}

impl JoinCondition {
    /// Pure equi-join on the given column pairs.
    pub fn equi(pairs: Vec<(usize, usize)>) -> JoinCondition {
        JoinCondition { equi: pairs, theta: vec![] }
    }

    /// Single-pair equi-join.
    pub fn on(left: usize, right: usize) -> JoinCondition {
        JoinCondition::equi(vec![(left, right)])
    }

    /// Band join `|L.l − R.r| <= width`, expressed as two theta atoms.
    pub fn band(left: usize, right: usize, width: i64) -> JoinCondition {
        JoinCondition {
            equi: vec![],
            theta: vec![
                // L.l <= R.r + width
                ThetaAtom {
                    left: ScalarExpr::col(left),
                    op: CmpOp::Le,
                    right: ScalarExpr::bin(
                        BinOp::Add,
                        ScalarExpr::col(right),
                        ScalarExpr::lit(width),
                    ),
                },
                // L.l >= R.r - width
                ThetaAtom {
                    left: ScalarExpr::col(left),
                    op: CmpOp::Ge,
                    right: ScalarExpr::bin(
                        BinOp::Sub,
                        ScalarExpr::col(right),
                        ScalarExpr::lit(width),
                    ),
                },
            ],
        }
    }

    /// Inequality join `L.l op R.r`.
    pub fn inequality(left: usize, op: CmpOp, right: usize) -> JoinCondition {
        JoinCondition {
            equi: vec![],
            theta: vec![ThetaAtom {
                left: ScalarExpr::col(left),
                op,
                right: ScalarExpr::col(right),
            }],
        }
    }

    /// Add a theta conjunct.
    pub fn with_theta(mut self, left: ScalarExpr, op: CmpOp, right: ScalarExpr) -> JoinCondition {
        self.theta.push(ThetaAtom { left, op, right });
        self
    }

    /// True when the condition has no non-equi part (usable with pure hash
    /// partitioning and hash indexes).
    pub fn is_equi(&self) -> bool {
        self.theta.is_empty() && !self.equi.is_empty()
    }

    /// True when there is no condition at all (cross product).
    pub fn is_cross(&self) -> bool {
        self.theta.is_empty() && self.equi.is_empty()
    }

    /// Evaluate the full conjunction against a `(left, right)` pair.
    pub fn matches(&self, left: &Tuple, right: &Tuple) -> Result<bool> {
        for &(l, r) in &self.equi {
            if left.get(l) != right.get(r) {
                return Ok(false);
            }
        }
        for atom in &self.theta {
            let lv = atom.left.eval(left)?;
            let rv = atom.right.eval(right)?;
            if !atom.op.eval(&lv, &rv) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The left-side / right-side key columns of the equi part.
    pub fn left_keys(&self) -> Vec<usize> {
        self.equi.iter().map(|&(l, _)| l).collect()
    }

    pub fn right_keys(&self) -> Vec<usize> {
        self.equi.iter().map(|&(_, r)| r).collect()
    }

    /// Swap sides: the condition for `R ⋈ L` given the one for `L ⋈ R`.
    pub fn flipped(&self) -> JoinCondition {
        JoinCondition {
            equi: self.equi.iter().map(|&(l, r)| (r, l)).collect(),
            theta: self
                .theta
                .iter()
                .map(|a| ThetaAtom {
                    left: a.right.clone(),
                    op: a.op.flip(),
                    right: a.left.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    #[test]
    fn equi_matches() {
        let c = JoinCondition::on(0, 1);
        assert!(c.matches(&tuple![5, 1], &tuple![9, 5]).unwrap());
        assert!(!c.matches(&tuple![5, 1], &tuple![9, 6]).unwrap());
        assert!(c.is_equi());
    }

    #[test]
    fn multi_equi() {
        let c = JoinCondition::equi(vec![(0, 0), (1, 1)]);
        assert!(c.matches(&tuple![1, 2], &tuple![1, 2]).unwrap());
        assert!(!c.matches(&tuple![1, 2], &tuple![1, 3]).unwrap());
    }

    #[test]
    fn band_join_width() {
        let c = JoinCondition::band(0, 0, 2);
        assert!(c.matches(&tuple![10], &tuple![12]).unwrap());
        assert!(c.matches(&tuple![10], &tuple![8]).unwrap());
        assert!(!c.matches(&tuple![10], &tuple![13]).unwrap());
        assert!(!c.is_equi());
    }

    #[test]
    fn inequality_join() {
        let c = JoinCondition::inequality(0, CmpOp::Lt, 0);
        assert!(c.matches(&tuple![1], &tuple![2]).unwrap());
        assert!(!c.matches(&tuple![2], &tuple![2]).unwrap());
    }

    #[test]
    fn paper_mixed_condition() {
        // R.A = S.A AND 2·R.B < S.C  with R = [A, B], S = [A, C].
        let c = JoinCondition::on(0, 0).with_theta(
            ScalarExpr::bin(BinOp::Mul, ScalarExpr::lit(2), ScalarExpr::col(1)),
            CmpOp::Lt,
            ScalarExpr::col(1),
        );
        assert!(c.matches(&tuple![7, 3], &tuple![7, 8]).unwrap()); // 6 < 8
        assert!(!c.matches(&tuple![7, 4], &tuple![7, 8]).unwrap()); // 8 < 8 false
        assert!(!c.matches(&tuple![6, 3], &tuple![7, 8]).unwrap()); // keys differ
    }

    #[test]
    fn flipped_is_symmetric() {
        let c = JoinCondition::inequality(0, CmpOp::Lt, 1);
        let f = c.flipped();
        let l = tuple![1];
        let r = tuple![0, 2];
        assert!(c.matches(&l, &r).unwrap());
        assert!(f.matches(&r, &l).unwrap());
    }

    #[test]
    fn cross_product() {
        let c = JoinCondition::default();
        assert!(c.is_cross());
        assert!(c.matches(&tuple![1], &tuple![2]).unwrap());
    }

    #[test]
    fn key_columns() {
        let c = JoinCondition::equi(vec![(0, 2), (3, 1)]);
        assert_eq!(c.left_keys(), vec![0, 3]);
        assert_eq!(c.right_keys(), vec![2, 1]);
    }

    #[test]
    fn cmp_op_flip_table() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Ne.flip(), CmpOp::Ne);
    }
}
