//! Scalar expressions over tuples and columnar chunks.

use std::fmt;

use squall_common::array::{Array, ArrayBuilder, I64Array, Utf8Array};
use squall_common::{Chunk, DataType, Date, Result, SquallError, Tuple, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Aggregate functions supported by Squall ("we currently support sum, count
/// and average aggregates", §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::Count => write!(f, "COUNT"),
            AggFunc::Sum => write!(f, "SUM"),
            AggFunc::Avg => write!(f, "AVG"),
        }
    }
}

/// A scalar expression evaluated against one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column reference by position (name resolution happens at plan time).
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Binary operation.
    Bin { op: BinOp, lhs: Box<ScalarExpr>, rhs: Box<ScalarExpr> },
    /// Boolean negation.
    Not(Box<ScalarExpr>),
    /// Type cast. `Cast(e, Date)` performs real text parsing when the input
    /// is a string — the per-tuple cost that dominates the `sel(date)` bar
    /// of Figure 5.
    Cast { expr: Box<ScalarExpr>, to: DataType },
}

impl ScalarExpr {
    pub fn col(idx: usize) -> ScalarExpr {
        ScalarExpr::Column(idx)
    }

    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    pub fn bin(op: BinOp, lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    pub fn eq(lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::bin(BinOp::Eq, lhs, rhs)
    }

    pub fn and(lhs: ScalarExpr, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::bin(BinOp::And, lhs, rhs)
    }

    pub fn cast(expr: ScalarExpr, to: DataType) -> ScalarExpr {
        ScalarExpr::Cast { expr: Box::new(expr), to }
    }

    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            ScalarExpr::Column(i) => {
                if *i >= tuple.arity() {
                    return Err(SquallError::InvalidPlan(format!(
                        "column {i} out of range for arity {}",
                        tuple.arity()
                    )));
                }
                Ok(tuple.get(*i).clone())
            }
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Bin { op, lhs, rhs } => {
                let l = lhs.eval(tuple)?;
                // Short-circuit booleans.
                match op {
                    BinOp::And => {
                        return if !truthy(&l)? {
                            Ok(Value::Int(0))
                        } else {
                            Ok(Value::Int(truthy(&rhs.eval(tuple)?)? as i64))
                        };
                    }
                    BinOp::Or => {
                        return if truthy(&l)? {
                            Ok(Value::Int(1))
                        } else {
                            Ok(Value::Int(truthy(&rhs.eval(tuple)?)? as i64))
                        };
                    }
                    _ => {}
                }
                let r = rhs.eval(tuple)?;
                eval_bin(*op, &l, &r)
            }
            ScalarExpr::Not(e) => Ok(Value::Int(!truthy(&e.eval(tuple)?)? as i64)),
            ScalarExpr::Cast { expr, to } => cast_value(expr.eval(tuple)?, *to),
        }
    }

    /// Evaluate as a predicate.
    pub fn eval_bool(&self, tuple: &Tuple) -> Result<bool> {
        truthy(&self.eval(tuple)?)
    }

    /// Evaluate against every row of a chunk, column-at-a-time.
    ///
    /// Column references clone the input column, comparisons and integer
    /// arithmetic over fully-valid `Int` columns run as tight loops over
    /// primitive slices, and everything else falls back to per-row
    /// evaluation over materialized cell values — never whole row tuples.
    /// On a successful run the result is row-for-row identical to
    /// [`ScalarExpr::eval`]; when some row errors, the chunk evaluation
    /// surfaces the same error but may do so before earlier rows' results
    /// are consumed (the run aborts either way). `AND`/`OR` keep their
    /// short-circuit contract: the right side is not evaluated at all
    /// unless some row needs it, and if its vectorized evaluation fails,
    /// evaluation degrades to exact per-row semantics.
    pub fn eval_chunk(&self, chunk: &Chunk) -> Result<Array> {
        match self {
            ScalarExpr::Column(i) => {
                if *i >= chunk.n_cols() {
                    return Err(SquallError::InvalidPlan(format!(
                        "column {i} out of range for arity {}",
                        chunk.n_cols()
                    )));
                }
                Ok(chunk.column(*i).clone())
            }
            ScalarExpr::Literal(v) => Ok(broadcast(v, chunk.n_rows())),
            ScalarExpr::Bin { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => eval_logical_chunk(*op, self, lhs, rhs, chunk),
                _ => {
                    let l = lhs.eval_chunk(chunk)?;
                    let r = rhs.eval_chunk(chunk)?;
                    eval_bin_arrays(*op, &l, &r)
                }
            },
            ScalarExpr::Not(e) => {
                let a = e.eval_chunk(chunk)?;
                let mut out = Vec::with_capacity(a.len());
                for i in 0..a.len() {
                    out.push(!truthy(&a.value(i))? as i64);
                }
                Ok(Array::Int(I64Array::from_values(out)))
            }
            ScalarExpr::Cast { expr, to } => {
                let a = expr.eval_chunk(chunk)?;
                let mut b = ArrayBuilder::new();
                for i in 0..a.len() {
                    b.push(&cast_value(a.value(i), *to)?);
                }
                Ok(b.finish())
            }
        }
    }

    /// Evaluate as a predicate over every row of a chunk. `mask[i]` is the
    /// truthiness of row `i`.
    pub fn eval_bool_chunk(&self, chunk: &Chunk) -> Result<Vec<bool>> {
        let a = self.eval_chunk(chunk)?;
        // Fully-valid Int predicate output (the common case: comparisons
        // produce exactly this) needs no per-row Value materialization.
        if let Some(ints) = a.as_i64() {
            if ints.validity().is_none() {
                return Ok(ints.values().iter().map(|&v| v != 0).collect());
            }
        }
        let mut mask = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            mask.push(truthy(&a.value(i))?);
        }
        Ok(mask)
    }

    /// The set of column indexes this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Column(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Bin { lhs, rhs, .. } => {
                lhs.referenced_columns(out);
                rhs.referenced_columns(out);
            }
            ScalarExpr::Not(e) | ScalarExpr::Cast { expr: e, .. } => e.referenced_columns(out),
        }
    }

    /// Rewrite column indexes through a mapping (old index → new index).
    /// Used by projection pushdown when a component narrows its output
    /// scheme (§2, "each component decides on its output scheme based on the
    /// fields/expressions that are needed downstream").
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::Column(i) => ScalarExpr::Column(map(*i)),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Bin { op, lhs, rhs } => ScalarExpr::Bin {
                op: *op,
                lhs: Box::new(lhs.remap_columns(map)),
                rhs: Box::new(rhs.remap_columns(map)),
            },
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.remap_columns(map))),
            ScalarExpr::Cast { expr, to } => {
                ScalarExpr::Cast { expr: Box::new(expr.remap_columns(map)), to: *to }
            }
        }
    }
}

/// Boolean interpretation: non-zero numerics are true.
fn truthy(v: &Value) -> Result<bool> {
    match v {
        Value::Int(i) => Ok(*i != 0),
        Value::Float(f) => Ok(*f != 0.0),
        Value::Null => Ok(false),
        other => {
            Err(SquallError::TypeMismatch { expected: "boolean-like", found: format!("{other:?}") })
        }
    }
}

/// A column holding `rows` copies of one literal.
fn broadcast(v: &Value, rows: usize) -> Array {
    match v {
        Value::Null => Array::Null(rows),
        Value::Int(i) => Array::Int(I64Array::from_values(vec![*i; rows])),
        Value::Float(f) => {
            Array::Float(squall_common::array::F64Array::from_values(vec![*f; rows]))
        }
        Value::Str(s) => {
            let mut a = Utf8Array::new();
            for _ in 0..rows {
                a.push(Some(s));
            }
            Array::Str(a)
        }
        Value::Date(d) => {
            Array::Date(squall_common::array::DateArray::from_values(vec![d.0; rows]))
        }
    }
}

/// Chunked `AND`/`OR` preserving the short-circuit contract: the right side
/// is only evaluated if some row's left side leaves the outcome open, and a
/// failing vectorized right side degrades to exact per-row evaluation of
/// the whole expression (so errors surface for precisely the rows that
/// would reach them row-at-a-time).
fn eval_logical_chunk(
    op: BinOp,
    whole: &ScalarExpr,
    lhs: &ScalarExpr,
    rhs: &ScalarExpr,
    chunk: &Chunk,
) -> Result<Array> {
    let l = lhs.eval_chunk(chunk)?;
    let rows = l.len();
    let mut lmask = Vec::with_capacity(rows);
    for i in 0..rows {
        lmask.push(truthy(&l.value(i))?);
    }
    let needs_rhs = match op {
        BinOp::And => lmask.iter().any(|&b| b),
        BinOp::Or => lmask.iter().any(|&b| !b),
        _ => unreachable!("eval_logical_chunk only handles AND/OR"),
    };
    if !needs_rhs {
        let decided = match op {
            BinOp::And => 0,
            _ => 1,
        };
        return Ok(Array::Int(I64Array::from_values(vec![decided; rows])));
    }
    match rhs.eval_chunk(chunk) {
        Ok(r) => {
            let mut out = Vec::with_capacity(rows);
            for (i, &lv) in lmask.iter().enumerate() {
                let v = match op {
                    BinOp::And => {
                        if lv {
                            truthy(&r.value(i))? as i64
                        } else {
                            0
                        }
                    }
                    _ => {
                        if lv {
                            1
                        } else {
                            truthy(&r.value(i))? as i64
                        }
                    }
                };
                out.push(v);
            }
            Ok(Array::Int(I64Array::from_values(out)))
        }
        Err(_) => {
            // Exact row semantics: rows whose left side decides never touch
            // the failing right side.
            let mut b = ArrayBuilder::new();
            for i in 0..rows {
                b.push(&whole.eval(&chunk.row(i))?);
            }
            Ok(b.finish())
        }
    }
}

/// Element-wise binary evaluation over two columns. Fully-valid `Int`
/// columns take vectorized loops; everything else falls back to per-cell
/// [`eval_bin`].
fn eval_bin_arrays(op: BinOp, l: &Array, r: &Array) -> Result<Array> {
    debug_assert_eq!(l.len(), r.len(), "operand column lengths differ");
    if let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) {
        if a.validity().is_none() && b.validity().is_none() {
            if let Some(out) = eval_bin_i64(op, a.values(), b.values()) {
                return Ok(out);
            }
        }
    }
    let mut bld = ArrayBuilder::new();
    for i in 0..l.len() {
        bld.push(&eval_bin(op, &l.value(i), &r.value(i))?);
    }
    Ok(bld.finish())
}

/// Vectorized `Int × Int` kernels. Returns `None` when the operation can
/// produce NULL (division by a zero divisor) — the caller then takes the
/// exact per-cell path.
fn eval_bin_i64(op: BinOp, a: &[i64], b: &[i64]) -> Option<Array> {
    use BinOp::*;
    let zip = a.iter().zip(b.iter());
    let out: Vec<i64> = match op {
        Eq => zip.map(|(x, y)| (x == y) as i64).collect(),
        Ne => zip.map(|(x, y)| (x != y) as i64).collect(),
        Lt => zip.map(|(x, y)| (x < y) as i64).collect(),
        Le => zip.map(|(x, y)| (x <= y) as i64).collect(),
        Gt => zip.map(|(x, y)| (x > y) as i64).collect(),
        Ge => zip.map(|(x, y)| (x >= y) as i64).collect(),
        Add => zip.map(|(x, y)| x.wrapping_add(*y)).collect(),
        Sub => zip.map(|(x, y)| x.wrapping_sub(*y)).collect(),
        Mul => zip.map(|(x, y)| x.wrapping_mul(*y)).collect(),
        Div | Mod => {
            if b.contains(&0) {
                return None; // NULL rows: take the per-cell path
            }
            match op {
                Div => zip.map(|(x, y)| x.wrapping_div(*y)).collect(),
                _ => zip.map(|(x, y)| x.wrapping_rem(*y)).collect(),
            }
        }
        And | Or => return None, // handled by eval_logical_chunk
    };
    Some(Array::Int(I64Array::from_values(out)))
}

fn eval_bin(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    if op.is_comparison() {
        let ord = l.cmp(r);
        let b = match op {
            Eq => ord == std::cmp::Ordering::Equal,
            Ne => ord != std::cmp::Ordering::Equal,
            Lt => ord == std::cmp::Ordering::Less,
            Le => ord != std::cmp::Ordering::Greater,
            Gt => ord == std::cmp::Ordering::Greater,
            Ge => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Int(b as i64));
    }
    // Arithmetic: stay integral when both sides are ints (except Div by 0).
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                Add => a.wrapping_add(*b),
                Sub => a.wrapping_sub(*b),
                Mul => a.wrapping_mul(*b),
                Div => {
                    if *b == 0 {
                        return Ok(Value::Null);
                    }
                    a.wrapping_div(*b)
                }
                Mod => {
                    if *b == 0 {
                        return Ok(Value::Null);
                    }
                    a.wrapping_rem(*b)
                }
                _ => unreachable!(),
            };
            Ok(Value::Int(v))
        }
        _ => {
            let a = l.as_float()?;
            let b = r.as_float()?;
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
    }
}

fn cast_value(v: Value, to: DataType) -> Result<Value> {
    match (v, to) {
        (Value::Int(i), DataType::Int) => Ok(Value::Int(i)),
        (Value::Float(f), DataType::Int) => Ok(Value::Int(f as i64)),
        (Value::Str(s), DataType::Int) => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| SquallError::Parse(format!("cannot cast {s:?} to INT"))),
        (Value::Int(i), DataType::Float) => Ok(Value::Float(i as f64)),
        (Value::Float(f), DataType::Float) => Ok(Value::Float(f)),
        (Value::Str(s), DataType::Float) => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| SquallError::Parse(format!("cannot cast {s:?} to FLOAT"))),
        (Value::Str(s), DataType::Date) => Date::parse(&s).map(Value::Date),
        (Value::Date(d), DataType::Date) => Ok(Value::Date(d)),
        (v, DataType::Str) => Ok(Value::str(v.to_string())),
        (Value::Null, _) => Ok(Value::Null),
        (v, t) => Err(SquallError::TypeMismatch {
            expected: "castable value",
            found: format!("{v:?} -> {t}"),
        }),
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(i) => write!(f, "${i}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Bin { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            ScalarExpr::Not(e) => write!(f, "NOT ({e})"),
            ScalarExpr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    #[test]
    fn column_and_literal() {
        let t = tuple![5, "x"];
        assert_eq!(ScalarExpr::col(0).eval(&t).unwrap(), Value::Int(5));
        assert_eq!(ScalarExpr::lit(9).eval(&t).unwrap(), Value::Int(9));
        assert!(ScalarExpr::col(7).eval(&t).is_err());
    }

    #[test]
    fn integer_arithmetic() {
        let t = tuple![10, 3];
        let e = ScalarExpr::bin(BinOp::Mod, ScalarExpr::col(0), ScalarExpr::col(1));
        assert_eq!(e.eval(&t).unwrap(), Value::Int(1));
        let d = ScalarExpr::bin(BinOp::Div, ScalarExpr::col(0), ScalarExpr::lit(0));
        assert_eq!(d.eval(&t).unwrap(), Value::Null, "div by zero is NULL");
    }

    #[test]
    fn mixed_arithmetic_widens() {
        let t = tuple![10, 2.5];
        let e = ScalarExpr::bin(BinOp::Mul, ScalarExpr::col(0), ScalarExpr::col(1));
        assert_eq!(e.eval(&t).unwrap(), Value::Float(25.0));
    }

    #[test]
    fn comparisons() {
        let t = tuple![2, 3];
        let lt = ScalarExpr::bin(BinOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1));
        assert!(lt.eval_bool(&t).unwrap());
        let ge = ScalarExpr::bin(BinOp::Ge, ScalarExpr::col(0), ScalarExpr::col(1));
        assert!(!ge.eval_bool(&t).unwrap());
    }

    #[test]
    fn paper_join_predicate_shape() {
        // 2 * R.B < S.C   (§3.3 example) over concatenated tuple [B, C].
        let t = tuple![4, 9];
        let e = ScalarExpr::bin(
            BinOp::Lt,
            ScalarExpr::bin(BinOp::Mul, ScalarExpr::lit(2), ScalarExpr::col(0)),
            ScalarExpr::col(1),
        );
        assert!(e.eval_bool(&t).unwrap()); // 8 < 9
        let t2 = tuple![5, 9];
        assert!(!e.eval_bool(&t2).unwrap()); // 10 < 9 is false
    }

    #[test]
    fn boolean_short_circuit() {
        // AND short-circuits: rhs would error (bad column) but is not reached.
        let t = tuple![0];
        let e = ScalarExpr::and(ScalarExpr::col(0), ScalarExpr::col(99));
        assert!(!e.eval_bool(&t).unwrap());
        let o = ScalarExpr::bin(BinOp::Or, ScalarExpr::lit(1), ScalarExpr::col(99));
        assert!(o.eval_bool(&t).unwrap());
    }

    #[test]
    fn not() {
        let t = tuple![1];
        assert!(!ScalarExpr::Not(Box::new(ScalarExpr::col(0))).eval_bool(&t).unwrap());
    }

    #[test]
    fn cast_str_to_date_parses() {
        let t = tuple!["1994-07-01"];
        let e = ScalarExpr::cast(ScalarExpr::col(0), DataType::Date);
        let v = e.eval(&t).unwrap();
        assert_eq!(v, Value::Date(Date::parse("1994-07-01").unwrap()));
        let bad = tuple!["not-a-date"];
        assert!(e.eval(&bad).is_err());
    }

    #[test]
    fn cast_str_to_int() {
        let t = tuple![" 42 "];
        let e = ScalarExpr::cast(ScalarExpr::col(0), DataType::Int);
        assert_eq!(e.eval(&t).unwrap(), Value::Int(42));
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = ScalarExpr::and(
            ScalarExpr::eq(ScalarExpr::col(2), ScalarExpr::col(0)),
            ScalarExpr::bin(BinOp::Lt, ScalarExpr::col(2), ScalarExpr::lit(5)),
        );
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 2]);
    }

    #[test]
    fn remap_columns() {
        let e = ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::col(5));
        let r = e.remap_columns(&|i| i - 3);
        let t = tuple![7, 0, 7];
        assert!(r.eval_bool(&t).unwrap());
    }

    #[test]
    fn eval_chunk_matches_row_eval() {
        let ts = vec![
            tuple![10, 3, 2.5, "7", Value::Null],
            tuple![0, 0, 4.0, " 42 ", 8],
            tuple![-5, 9, 1.0, "0", Value::Null],
        ];
        let chunk = Chunk::from_tuples(&ts);
        let exprs = vec![
            ScalarExpr::col(0),
            ScalarExpr::lit(9),
            ScalarExpr::bin(BinOp::Add, ScalarExpr::col(0), ScalarExpr::col(1)),
            ScalarExpr::bin(BinOp::Mod, ScalarExpr::col(0), ScalarExpr::col(1)),
            ScalarExpr::bin(BinOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1)),
            ScalarExpr::bin(BinOp::Mul, ScalarExpr::col(0), ScalarExpr::col(2)),
            ScalarExpr::and(
                ScalarExpr::bin(BinOp::Ge, ScalarExpr::col(0), ScalarExpr::lit(0)),
                ScalarExpr::bin(BinOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(1)),
            ),
            ScalarExpr::bin(
                BinOp::Or,
                ScalarExpr::col(0),
                ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit(0)),
            ),
            ScalarExpr::Not(Box::new(ScalarExpr::col(0))),
            ScalarExpr::cast(ScalarExpr::col(3), DataType::Int),
            // NULL-bearing column: comparisons use Value's total order.
            ScalarExpr::bin(BinOp::Le, ScalarExpr::col(4), ScalarExpr::col(0)),
        ];
        for e in &exprs {
            let col = e.eval_chunk(&chunk).unwrap();
            for (i, t) in ts.iter().enumerate() {
                assert_eq!(col.value(i), e.eval(t).unwrap(), "expr {e} row {i}");
            }
        }
    }

    #[test]
    fn eval_chunk_short_circuit_skips_bad_rhs() {
        // Every row's lhs is false, so the erroring rhs must never run —
        // same contract as the row path.
        let ts = vec![tuple![0], tuple![0]];
        let chunk = Chunk::from_tuples(&ts);
        let e = ScalarExpr::and(ScalarExpr::col(0), ScalarExpr::col(99));
        let col = e.eval_chunk(&chunk).unwrap();
        assert_eq!(col.value(0), Value::Int(0));
        assert_eq!(col.value(1), Value::Int(0));
        // Mixed: one row needs the rhs → the error must surface, exactly as
        // the row path would at that row.
        let ts = vec![tuple![0], tuple![1]];
        let chunk = Chunk::from_tuples(&ts);
        assert!(e.eval_chunk(&chunk).is_err());
    }

    #[test]
    fn eval_bool_chunk_mask() {
        let ts = vec![tuple![2, 3], tuple![5, 3], tuple![1, 1]];
        let chunk = Chunk::from_tuples(&ts);
        let lt = ScalarExpr::bin(BinOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1));
        assert_eq!(lt.eval_bool_chunk(&chunk).unwrap(), vec![true, false, false]);
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = ScalarExpr::bin(
            BinOp::Lt,
            ScalarExpr::bin(BinOp::Mul, ScalarExpr::lit(2), ScalarExpr::col(0)),
            ScalarExpr::col(1),
        );
        assert_eq!(e.to_string(), "((2 * $0) < $1)");
    }
}
