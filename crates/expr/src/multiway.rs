//! Multi-way join specifications.
//!
//! A [`MultiJoinSpec`] is the join graph the §4 optimization algorithms
//! consume: the relations (with estimated sizes and per-attribute skew
//! hints) and the conjunction of join atoms between pairs of relations.
//!
//! Equality atoms induce *join-key equivalence classes* (attributes
//! transitively equated, e.g. `L.Partkey = PS.Partkey AND PS.Partkey =
//! P.Partkey` is one class over three relations). The paper's observation in
//! §4 — "using join keys is sufficient" — means these classes are exactly
//! the candidate hypercube dimensions.

use squall_common::{Result, Schema, SquallError, Tuple};

use crate::join_cond::CmpOp;

/// One relation participating in a multi-way join.
#[derive(Debug, Clone)]
pub struct RelationDef {
    pub name: String,
    pub schema: Schema,
    /// Estimated cardinality (relative sizes drive dimension sizing, §4).
    pub est_size: u64,
}

impl RelationDef {
    pub fn new(name: impl Into<String>, schema: Schema, est_size: u64) -> RelationDef {
        RelationDef { name: name.into(), schema, est_size }
    }
}

/// One join conjunct `Rel[l].col(lc) op Rel[r].col(rc)` between two distinct
/// relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinAtom {
    pub left_rel: usize,
    pub left_col: usize,
    pub op: CmpOp,
    pub right_rel: usize,
    pub right_col: usize,
}

impl JoinAtom {
    pub fn eq(left_rel: usize, left_col: usize, right_rel: usize, right_col: usize) -> JoinAtom {
        JoinAtom { left_rel, left_col, op: CmpOp::Eq, right_rel, right_col }
    }
}

/// A join-key equivalence class: the set of `(relation, column)` attribute
/// occurrences transitively connected by equality atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyClass {
    /// Attribute occurrences, sorted by `(relation, column)`.
    pub members: Vec<(usize, usize)>,
}

impl KeyClass {
    /// Relations participating in the class.
    pub fn relations(&self) -> Vec<usize> {
        let mut rels: Vec<usize> = self.members.iter().map(|&(r, _)| r).collect();
        rels.sort_unstable();
        rels.dedup();
        rels
    }

    /// A class is a *join key* when it spans at least two relations.
    pub fn is_join_key(&self) -> bool {
        self.relations().len() >= 2
    }
}

/// An n-way join specification.
#[derive(Debug, Clone)]
pub struct MultiJoinSpec {
    pub relations: Vec<RelationDef>,
    pub atoms: Vec<JoinAtom>,
}

impl MultiJoinSpec {
    pub fn new(relations: Vec<RelationDef>, atoms: Vec<JoinAtom>) -> Result<MultiJoinSpec> {
        let spec = MultiJoinSpec { relations, atoms };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<()> {
        if self.relations.is_empty() {
            return Err(SquallError::InvalidPlan("multi-way join with no relations".into()));
        }
        for a in &self.atoms {
            for &(rel, col) in &[(a.left_rel, a.left_col), (a.right_rel, a.right_col)] {
                let r = self.relations.get(rel).ok_or_else(|| {
                    SquallError::InvalidPlan(format!("atom references relation {rel}"))
                })?;
                if col >= r.schema.arity() {
                    return Err(SquallError::InvalidPlan(format!(
                        "atom references column {col} of {} (arity {})",
                        r.name,
                        r.schema.arity()
                    )));
                }
            }
            if a.left_rel == a.right_rel {
                return Err(SquallError::InvalidPlan(
                    "self-comparisons belong in a selection, not a join atom".into(),
                ));
            }
        }
        Ok(())
    }

    pub fn n_relations(&self) -> usize {
        self.relations.len()
    }

    /// Find a relation index by name.
    pub fn relation_index(&self, name: &str) -> Result<usize> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| SquallError::UnknownRelation(name.to_string()))
    }

    /// Equality atoms only.
    pub fn equi_atoms(&self) -> impl Iterator<Item = &JoinAtom> {
        self.atoms.iter().filter(|a| a.op == CmpOp::Eq)
    }

    /// Non-equality atoms only.
    pub fn theta_atoms(&self) -> impl Iterator<Item = &JoinAtom> {
        self.atoms.iter().filter(|a| a.op != CmpOp::Eq)
    }

    /// Whether all atoms are equalities.
    pub fn is_equi_join(&self) -> bool {
        self.atoms.iter().all(|a| a.op == CmpOp::Eq)
    }

    /// Compute the join-key equivalence classes via union-find over
    /// attribute occurrences connected by equality atoms. Classes are
    /// returned in a deterministic order (by smallest member).
    pub fn key_classes(&self) -> Vec<KeyClass> {
        // Flatten (rel, col) occurrences that appear in equality atoms.
        let mut nodes: Vec<(usize, usize)> = Vec::new();
        let index_of = |nodes: &mut Vec<(usize, usize)>, key: (usize, usize)| -> usize {
            match nodes.iter().position(|&n| n == key) {
                Some(i) => i,
                None => {
                    nodes.push(key);
                    nodes.len() - 1
                }
            }
        };
        let mut edges = Vec::new();
        for a in self.equi_atoms() {
            let l = index_of(&mut nodes, (a.left_rel, a.left_col));
            let r = index_of(&mut nodes, (a.right_rel, a.right_col));
            edges.push((l, r));
        }
        // Union-find.
        let mut parent: Vec<usize> = (0..nodes.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (l, r) in edges {
            let (rl, rr) = (find(&mut parent, l), find(&mut parent, r));
            if rl != rr {
                parent[rl] = rr;
            }
        }
        // Group members by root.
        let mut groups: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        for (i, &node) in nodes.iter().enumerate() {
            let root = find(&mut parent, i);
            match groups.iter_mut().find(|(r, _)| *r == root) {
                Some((_, members)) => members.push(node),
                None => groups.push((root, vec![node])),
            }
        }
        let mut classes: Vec<KeyClass> = groups
            .into_iter()
            .map(|(_, mut members)| {
                members.sort_unstable();
                KeyClass { members }
            })
            .collect();
        classes.sort_by_key(|c| c.members[0]);
        classes
    }

    /// Whether an attribute occurrence is skew-free according to its
    /// schema hint.
    pub fn is_skew_free(&self, rel: usize, col: usize) -> bool {
        self.relations[rel].schema.field(col).skew_free
    }

    /// The output schema: concatenation of all relation schemas, columns
    /// qualified by relation name.
    pub fn output_schema(&self) -> Schema {
        let mut out = Schema::default();
        for r in &self.relations {
            out = out.concat(&r.schema.qualified(&r.name));
        }
        out
    }

    /// Column offset of relation `rel` inside the concatenated output.
    pub fn output_offset(&self, rel: usize) -> usize {
        self.relations[..rel].iter().map(|r| r.schema.arity()).sum()
    }

    /// Reference oracle: do the given tuples (one per relation, in relation
    /// order) jointly satisfy every atom? Used by tests and the naive
    /// executor.
    pub fn matches(&self, tuples: &[&Tuple]) -> bool {
        debug_assert_eq!(tuples.len(), self.relations.len());
        self.atoms.iter().all(|a| {
            let l = tuples[a.left_rel].get(a.left_col);
            let r = tuples[a.right_rel].get(a.right_col);
            a.op.eval(l, r)
        })
    }

    /// The atoms touching a given relation, as `(other_rel, my_col, op,
    /// other_col)` with the operator oriented from `rel`'s side.
    pub fn atoms_of(&self, rel: usize) -> Vec<(usize, usize, CmpOp, usize)> {
        let mut out = Vec::new();
        for a in &self.atoms {
            if a.left_rel == rel {
                out.push((a.right_rel, a.left_col, a.op, a.right_col));
            } else if a.right_rel == rel {
                out.push((a.left_rel, a.right_col, a.op.flip(), a.left_col));
            }
        }
        out
    }

    /// Is the *relation graph* (relations as nodes, an edge per atom pair)
    /// connected? Disconnected join graphs imply Cartesian products, which
    /// Squall rejects in multi-way operators.
    pub fn is_connected(&self) -> bool {
        let n = self.relations.len();
        if n == 0 {
            return false;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(r) = stack.pop() {
            for a in &self.atoms {
                let next = if a.left_rel == r {
                    a.right_rel
                } else if a.right_rel == r {
                    a.left_rel
                } else {
                    continue;
                };
                if !seen[next] {
                    seen[next] = true;
                    stack.push(next);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Is the relation graph acyclic (a tree/forest over relation pairs)?
    /// The DBToaster local operator of §3.3 targets acyclic joins; cyclic
    /// joins fall back to the traditional local operator.
    pub fn is_acyclic(&self) -> bool {
        // Count distinct relation-pair edges; a connected graph is a tree
        // iff #edges == #nodes - 1.
        let mut pairs: Vec<(usize, usize)> = self
            .atoms
            .iter()
            .map(|a| {
                let (x, y) = (a.left_rel.min(a.right_rel), a.left_rel.max(a.right_rel));
                (x, y)
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        // A forest has edges <= nodes - components; with connectivity it's
        // exactly nodes - 1.
        pairs.len() < self.relations.len() || self.relations.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, DataType};

    /// The paper's running example: R(x,y) ⋈ S(y,z) ⋈ T(z,t)  (§3.1).
    pub fn rst(h: u64) -> MultiJoinSpec {
        let r = RelationDef::new("R", Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]), h);
        let s = RelationDef::new("S", Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]), h);
        let t = RelationDef::new("T", Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]), h);
        MultiJoinSpec::new(vec![r, s, t], vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)])
            .unwrap()
    }

    #[test]
    fn key_classes_of_rst() {
        let spec = rst(100);
        let classes = spec.key_classes();
        assert_eq!(classes.len(), 2);
        // y-class: R.y (0,1) and S.y (1,0).
        assert_eq!(classes[0].members, vec![(0, 1), (1, 0)]);
        // z-class: S.z (1,1) and T.z (2,0).
        assert_eq!(classes[1].members, vec![(1, 1), (2, 0)]);
        assert!(classes.iter().all(|c| c.is_join_key()));
    }

    #[test]
    fn transitive_class_merges() {
        // L.pk = PS.pk AND PS.pk = P.pk → a single 3-relation class
        // (the TPCH9-Partial shape, §3.2 "join among multiple relations on
        // the same key").
        let mk = |n: &str| RelationDef::new(n, Schema::of(&[("pk", DataType::Int)]), 10);
        let spec = MultiJoinSpec::new(
            vec![mk("L"), mk("PS"), mk("P")],
            vec![JoinAtom::eq(0, 0, 1, 0), JoinAtom::eq(1, 0, 2, 0)],
        )
        .unwrap();
        let classes = spec.key_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members, vec![(0, 0), (1, 0), (2, 0)]);
        assert_eq!(classes[0].relations(), vec![0, 1, 2]);
    }

    #[test]
    fn validation_rejects_bad_atoms() {
        let r = RelationDef::new("R", Schema::of(&[("x", DataType::Int)]), 1);
        let s = RelationDef::new("S", Schema::of(&[("x", DataType::Int)]), 1);
        // Column out of range.
        assert!(
            MultiJoinSpec::new(vec![r.clone(), s.clone()], vec![JoinAtom::eq(0, 5, 1, 0)]).is_err()
        );
        // Self-comparison.
        assert!(
            MultiJoinSpec::new(vec![r.clone(), s.clone()], vec![JoinAtom::eq(0, 0, 0, 0)]).is_err()
        );
        // Dangling relation.
        assert!(MultiJoinSpec::new(vec![r, s], vec![JoinAtom::eq(0, 0, 7, 0)]).is_err());
    }

    #[test]
    fn matches_oracle() {
        let spec = rst(1);
        let r = tuple![100, 7];
        let s = tuple![7, 9];
        let t = tuple![9, 200];
        assert!(spec.matches(&[&r, &s, &t]));
        let t_bad = tuple![8, 200];
        assert!(!spec.matches(&[&r, &s, &t_bad]));
    }

    #[test]
    fn theta_atoms_detected() {
        let r = RelationDef::new("R", Schema::of(&[("x", DataType::Int)]), 1);
        let s = RelationDef::new("S", Schema::of(&[("y", DataType::Int)]), 1);
        let spec = MultiJoinSpec::new(
            vec![r, s],
            vec![JoinAtom { left_rel: 0, left_col: 0, op: CmpOp::Lt, right_rel: 1, right_col: 0 }],
        )
        .unwrap();
        assert!(!spec.is_equi_join());
        assert_eq!(spec.theta_atoms().count(), 1);
        assert_eq!(spec.key_classes().len(), 0);
    }

    #[test]
    fn connectivity_and_acyclicity() {
        let spec = rst(1);
        assert!(spec.is_connected());
        assert!(spec.is_acyclic());

        // Triangle R-S, S-T, R-T is cyclic.
        let mk = |n: &str| RelationDef::new(n, Schema::of(&[("a", DataType::Int)]), 1);
        let tri = MultiJoinSpec::new(
            vec![mk("R"), mk("S"), mk("T")],
            vec![JoinAtom::eq(0, 0, 1, 0), JoinAtom::eq(1, 0, 2, 0), JoinAtom::eq(0, 0, 2, 0)],
        )
        .unwrap();
        assert!(tri.is_connected());
        assert!(!tri.is_acyclic());

        // Disconnected pair.
        let disc = MultiJoinSpec::new(vec![mk("R"), mk("S")], vec![]).unwrap();
        assert!(!disc.is_connected());
    }

    #[test]
    fn atoms_of_orients_operators() {
        let mk = |n: &str| RelationDef::new(n, Schema::of(&[("a", DataType::Int)]), 1);
        let spec = MultiJoinSpec::new(
            vec![mk("R"), mk("S")],
            vec![JoinAtom { left_rel: 0, left_col: 0, op: CmpOp::Lt, right_rel: 1, right_col: 0 }],
        )
        .unwrap();
        // From R's perspective: R.a < S.a.
        assert_eq!(spec.atoms_of(0), vec![(1, 0, CmpOp::Lt, 0)]);
        // From S's perspective the operator flips: S.a > R.a.
        assert_eq!(spec.atoms_of(1), vec![(0, 0, CmpOp::Gt, 0)]);
    }

    #[test]
    fn output_schema_and_offsets() {
        let spec = rst(1);
        let out = spec.output_schema();
        assert_eq!(out.arity(), 6);
        assert_eq!(out.index_of("R.x").unwrap(), 0);
        assert_eq!(out.index_of("S.z").unwrap(), 3);
        assert_eq!(out.index_of("T.t").unwrap(), 5);
        assert_eq!(spec.output_offset(0), 0);
        assert_eq!(spec.output_offset(1), 2);
        assert_eq!(spec.output_offset(2), 4);
    }

    #[test]
    fn relation_lookup() {
        let spec = rst(1);
        assert_eq!(spec.relation_index("S").unwrap(), 1);
        assert!(spec.relation_index("Z").is_err());
    }
}
