//! # squall-expr
//!
//! Scalar expressions, selection predicates and join conditions.
//!
//! Squall queries are conjunctive SELECT/PROJECT/JOIN/AGGREGATE queries
//! (§2). This crate provides:
//!
//! * [`ScalarExpr`] — arithmetic/comparison/boolean expressions over a tuple,
//!   including the `Cast` to `Date` whose parsing cost the paper's Figure 5
//!   measures explicitly;
//! * [`JoinCondition`] — a 2-way join condition split into equi pairs and
//!   theta (band/inequality/general) atoms, as required by the local join
//!   index selection of §3.3 ("hash indexes for equi-joins, and balanced
//!   binary tree indexes for band and inequality joins");
//! * [`MultiJoinSpec`] — an n-way join graph with per-attribute skew hints
//!   and estimated relation sizes: exactly the input the Hash-, Random- and
//!   Hybrid-Hypercube optimization algorithms of §4 take.

pub mod join_cond;
pub mod multiway;
pub mod scalar;

pub use join_cond::{CmpOp, JoinCondition, ThetaAtom};
pub use multiway::{JoinAtom, KeyClass, MultiJoinSpec, RelationDef};
pub use scalar::{AggFunc, BinOp, ScalarExpr};
