//! Aggregation operators: SUM, COUNT, AVG with GROUP BY (§2: "we currently
//! support sum, count and average aggregates").
//!
//! Squall's aggregates are *online*: every input updates the group state
//! and the operator can emit the refreshed row immediately (full-history
//! incremental view maintenance). All three aggregates are also
//! *subtractable*, which the sliding-window variants exploit.

use squall_common::array::Array;
use squall_common::codec::{self, Reader};
use squall_common::{Chunk, FxHashMap, Result, Tuple, Value};
use squall_expr::{AggFunc, ScalarExpr};

use crate::Snapshot;

/// One aggregate column: the function plus its input expression (COUNT
/// needs none).
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: AggFunc,
    pub input: Option<ScalarExpr>,
}

impl AggSpec {
    pub fn count() -> AggSpec {
        AggSpec { func: AggFunc::Count, input: None }
    }

    pub fn sum(expr: ScalarExpr) -> AggSpec {
        AggSpec { func: AggFunc::Sum, input: Some(expr) }
    }

    pub fn avg(expr: ScalarExpr) -> AggSpec {
        AggSpec { func: AggFunc::Avg, input: Some(expr) }
    }

    pub fn sum_col(col: usize) -> AggSpec {
        AggSpec::sum(ScalarExpr::col(col))
    }
}

/// Accumulated state of one aggregate within one group.
#[derive(Debug, Clone, Default)]
struct AggState {
    count: i64,
    int_sum: i64,
    float_sum: f64,
    all_int: bool,
}

impl AggState {
    fn new() -> AggState {
        AggState { count: 0, int_sum: 0, float_sum: 0.0, all_int: true }
    }

    fn add(&mut self, v: &Value, sign: i64) -> Result<()> {
        self.count += sign;
        match v {
            Value::Int(i) => self.int_sum += sign * i,
            _ => {
                self.all_int = false;
                self.float_sum += sign as f64 * v.as_float()?;
            }
        }
        Ok(())
    }

    fn sum_value(&self) -> Value {
        if self.all_int {
            Value::Int(self.int_sum)
        } else {
            Value::Float(self.int_sum as f64 + self.float_sum)
        }
    }

    fn value(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => self.sum_value(),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float((self.int_sum as f64 + self.float_sum) / self.count as f64)
                }
            }
        }
    }
}

/// Hash GROUP BY with online updates.
#[derive(Debug)]
pub struct GroupByAggregator {
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    groups: FxHashMap<Vec<Value>, Vec<AggState>>,
}

impl GroupByAggregator {
    /// `group_cols` may be empty (a single global group).
    pub fn new(group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> GroupByAggregator {
        assert!(!aggs.is_empty(), "at least one aggregate");
        GroupByAggregator { group_cols, aggs, groups: FxHashMap::default() }
    }

    /// Fold one tuple in and return the group's refreshed output row
    /// (group key columns followed by aggregate values) — the online
    /// emission of incremental view maintenance.
    pub fn update(&mut self, tuple: &Tuple) -> Result<Tuple> {
        self.apply(tuple, 1)
    }

    /// Retract one tuple (sliding windows).
    pub fn retract(&mut self, tuple: &Tuple) -> Result<Tuple> {
        self.apply(tuple, -1)
    }

    /// Fold a whole columnar chunk in. Aggregate input expressions are
    /// evaluated column-at-a-time over the chunk; only the group-key
    /// lookup and accumulator bump happen per row (the state boundary).
    ///
    /// `on_row`, when given, receives each group's refreshed output row in
    /// input order — exactly what per-row [`GroupByAggregator::update`]
    /// returns (online emission). Pass `None` for final-mode aggregation
    /// to skip building output rows entirely, which per-row updates cannot
    /// avoid.
    pub fn update_chunk(
        &mut self,
        chunk: &Chunk,
        mut on_row: Option<&mut dyn FnMut(Tuple)>,
    ) -> Result<()> {
        let mut inputs: Vec<Option<Array>> = Vec::with_capacity(self.aggs.len());
        for a in &self.aggs {
            inputs.push(match &a.input {
                Some(e) => Some(e.eval_chunk(chunk)?),
                None => None,
            });
        }
        for i in 0..chunk.n_rows() {
            let key: Vec<Value> =
                self.group_cols.iter().map(|&c| chunk.column(c).value(i)).collect();
            let states = self
                .groups
                .entry(key.clone())
                .or_insert_with(|| vec![AggState::new(); self.aggs.len()]);
            for (st, (a, input)) in states.iter_mut().zip(self.aggs.iter().zip(&inputs)) {
                match a.func {
                    AggFunc::Count => st.count += 1,
                    _ => st.add(&input.as_ref().expect("sum/avg need an input").value(i), 1)?,
                }
            }
            // Insertions never empty a group, so no empty-group sweep here
            // (unlike `apply` with sign = -1).
            if let Some(emit) = on_row.as_mut() {
                let mut row = key;
                for (st, a) in states.iter().zip(&self.aggs) {
                    row.push(st.value(a.func));
                }
                emit(Tuple::new(row));
            }
        }
        Ok(())
    }

    /// Fold one row in from *precomputed* values — the group key and one
    /// input value per aggregate (`None` for COUNT) — without building an
    /// output row. This is the columnar windowed-insert kernel: the caller
    /// evaluates agg inputs and key columns column-at-a-time over a chunk
    /// and folds each row into (possibly several) window states, so no
    /// per-row [`Tuple`] and no expression re-evaluation per window.
    pub fn accumulate(&mut self, key: &[Value], inputs: &[Option<Value>]) -> Result<()> {
        debug_assert_eq!(key.len(), self.group_cols.len());
        debug_assert_eq!(inputs.len(), self.aggs.len());
        // Borrow-first: the owned key Vec is only allocated on the first
        // row of a new group.
        let states = match self.groups.get_mut(key) {
            Some(s) => s,
            None => self
                .groups
                .entry(key.to_vec())
                .or_insert_with(|| vec![AggState::new(); self.aggs.len()]),
        };
        for (st, (a, input)) in states.iter_mut().zip(self.aggs.iter().zip(inputs)) {
            match a.func {
                AggFunc::Count => st.count += 1,
                _ => st.add(input.as_ref().expect("sum/avg need an input"), 1)?,
            }
        }
        Ok(())
    }

    fn apply(&mut self, tuple: &Tuple, sign: i64) -> Result<Tuple> {
        let key = tuple.key(&self.group_cols);
        // Evaluate inputs before borrowing the state mutably.
        let mut inputs = Vec::with_capacity(self.aggs.len());
        for a in &self.aggs {
            inputs.push(match &a.input {
                Some(e) => Some(e.eval(tuple)?),
                None => None,
            });
        }
        let states = self
            .groups
            .entry(key.clone())
            .or_insert_with(|| vec![AggState::new(); self.aggs.len()]);
        for (st, (a, input)) in states.iter_mut().zip(self.aggs.iter().zip(&inputs)) {
            match a.func {
                AggFunc::Count => st.count += sign,
                _ => st.add(input.as_ref().expect("sum/avg need an input"), sign)?,
            }
        }
        let mut row = key;
        for (st, a) in states.iter().zip(&self.aggs) {
            row.push(st.value(a.func));
        }
        // Drop empty groups so retraction-heavy windows don't leak.
        if states[0].count == 0 && states.iter().all(|s| s.count == 0) {
            let key2 = tuple.key(&self.group_cols);
            self.groups.remove(&key2);
        }
        Ok(Tuple::new(row))
    }

    /// Current value of one group.
    pub fn group(&self, key: &[Value]) -> Option<Tuple> {
        self.groups.get(key).map(|states| {
            let mut row: Vec<Value> = key.to_vec();
            for (st, a) in states.iter().zip(&self.aggs) {
                row.push(st.value(a.func));
            }
            Tuple::new(row)
        })
    }

    /// Snapshot all groups (deterministic order: sorted by key).
    pub fn snapshot(&self) -> Vec<Tuple> {
        let mut keys: Vec<&Vec<Value>> = self.groups.keys().collect();
        keys.sort();
        keys.into_iter().map(|k| self.group(k).expect("key exists")).collect()
    }

    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }
}

impl Snapshot for GroupByAggregator {
    /// Raw accumulators per group: AVG is not invertible from published
    /// rows, so the state ships as-is. Groups are sorted by key so equal
    /// state means equal bytes.
    fn snapshot_state(&self, buf: &mut Vec<u8>) {
        let mut keys: Vec<&Vec<Value>> = self.groups.keys().collect();
        keys.sort();
        codec::put_u32(buf, keys.len() as u32);
        for key in keys {
            codec::put_tuple(buf, &Tuple::new(key.clone()));
            let states = &self.groups[key];
            codec::put_u32(buf, states.len() as u32);
            for st in states {
                codec::put_i64(buf, st.count);
                codec::put_i64(buf, st.int_sum);
                codec::put_f64(buf, st.float_sum);
                codec::put_bool(buf, st.all_int);
            }
        }
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        self.groups.clear();
        let n_groups = r.len()?;
        for _ in 0..n_groups {
            let key = codec::get_tuple(r)?.values().to_vec();
            let n_states = r.len()?;
            let mut states = Vec::with_capacity(n_states);
            for _ in 0..n_states {
                states.push(AggState {
                    count: r.i64()?,
                    int_sum: r.i64()?,
                    float_sum: r.f64()?,
                    all_int: r.bool()?,
                });
            }
            self.groups.insert(key, states);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;
    use squall_expr::BinOp;

    #[test]
    fn global_count_and_sum() {
        let mut agg = GroupByAggregator::new(vec![], vec![AggSpec::count(), AggSpec::sum_col(0)]);
        agg.update(&tuple![10]).unwrap();
        let row = agg.update(&tuple![5]).unwrap();
        assert_eq!(row, tuple![2, 15]);
    }

    #[test]
    fn group_by_key() {
        let mut agg = GroupByAggregator::new(vec![0], vec![AggSpec::sum_col(1)]);
        agg.update(&tuple!["a", 1]).unwrap();
        agg.update(&tuple!["b", 10]).unwrap();
        let row = agg.update(&tuple!["a", 2]).unwrap();
        assert_eq!(row, tuple!["a", 3]);
        let snap = agg.snapshot();
        assert_eq!(snap, vec![tuple!["a", 3], tuple!["b", 10]]);
        assert_eq!(agg.n_groups(), 2);
    }

    #[test]
    fn avg_mixes_ints_and_floats() {
        let mut agg = GroupByAggregator::new(vec![], vec![AggSpec::avg(ScalarExpr::col(0))]);
        agg.update(&tuple![1]).unwrap();
        agg.update(&tuple![2.0]).unwrap();
        let row = agg.update(&tuple![3]).unwrap();
        assert_eq!(row, tuple![2.0]);
    }

    #[test]
    fn sum_of_expression() {
        // SUM(2 * col1) — aggregates take expressions, not just columns
        // (TPC-H revenue-style aggregates).
        let e = ScalarExpr::bin(BinOp::Mul, ScalarExpr::lit(2), ScalarExpr::col(1));
        let mut agg = GroupByAggregator::new(vec![0], vec![AggSpec::sum(e)]);
        agg.update(&tuple![1, 10]).unwrap();
        let row = agg.update(&tuple![1, 5]).unwrap();
        assert_eq!(row, tuple![1, 30]);
    }

    #[test]
    fn retraction_inverts_and_drops_empty_groups() {
        let mut agg = GroupByAggregator::new(vec![0], vec![AggSpec::count(), AggSpec::sum_col(1)]);
        agg.update(&tuple![7, 100]).unwrap();
        agg.update(&tuple![7, 50]).unwrap();
        let row = agg.retract(&tuple![7, 100]).unwrap();
        assert_eq!(row, tuple![7, 1, 50]);
        agg.retract(&tuple![7, 50]).unwrap();
        assert_eq!(agg.n_groups(), 0, "empty groups must not leak");
    }

    #[test]
    fn integer_sums_stay_integer() {
        let mut agg = GroupByAggregator::new(vec![], vec![AggSpec::sum_col(0)]);
        for i in 0..100i64 {
            agg.update(&tuple![i]).unwrap();
        }
        assert_eq!(agg.snapshot()[0], tuple![4950]);
    }

    #[test]
    fn accumulate_matches_update() {
        // The precomputed-inputs kernel must leave identical state to the
        // per-row update path (snapshot is byte-comparable: sorted keys).
        let specs = || {
            vec![
                AggSpec::count(),
                AggSpec::sum(ScalarExpr::bin(BinOp::Mul, ScalarExpr::lit(2), ScalarExpr::col(1))),
                AggSpec::avg(ScalarExpr::col(1)),
            ]
        };
        let mut by_update = GroupByAggregator::new(vec![0], specs());
        let mut by_accumulate = GroupByAggregator::new(vec![0], specs());
        for (k, v) in [(1i64, 10i64), (2, 20), (1, 5), (3, 7), (2, 1)] {
            let t = tuple![k, v];
            by_update.update(&t).unwrap();
            let key = [Value::Int(k)];
            let inputs = [None, Some(Value::Int(2 * v)), Some(Value::Int(v))];
            by_accumulate.accumulate(&key, &inputs).unwrap();
        }
        assert_eq!(by_update.snapshot(), by_accumulate.snapshot());
    }

    #[test]
    fn avg_of_empty_group_is_null_after_retractions() {
        let mut agg = GroupByAggregator::new(vec![], vec![AggSpec::avg(ScalarExpr::col(0))]);
        agg.update(&tuple![4]).unwrap();
        let row = agg.retract(&tuple![4]).unwrap();
        assert_eq!(row, tuple![Value::Null]);
    }
}
