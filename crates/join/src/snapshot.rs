//! Checkpointable operator state.
//!
//! The checkpoint subsystem snapshots every stateful operator at barrier
//! alignment and restores it on recovery. [`Snapshot`] is the one contract
//! both sides share: `snapshot_state` must be **deterministic** (two
//! operators holding equal logical state serialize byte-identically —
//! hash-map iteration order is sorted away), because recovery correctness
//! is verified by comparing post-recovery snapshots against a no-failure
//! run.
//!
//! Operators serialize the *minimal* state others can't rederive:
//!
//! * [`crate::DBToasterJoin`] writes only its **base** (singleton-view)
//!   tuples; restore replays them through the delta path, rebuilding every
//!   intermediate view — higher-order views are a pure function of the
//!   bases.
//! * [`crate::WindowJoin`] writes only its **live** window buffers plus
//!   frontiers; the wrapped join's state is exactly the joins of the live
//!   tuples.
//! * [`crate::GroupByAggregator`] writes its raw accumulators — AVG is not
//!   invertible from the published rows, so group state ships as-is.

use squall_common::codec::Reader;
use squall_common::Result;

/// Serialize/restore an operator's state for checkpointing.
///
/// `restore_state` is always called on a **freshly constructed** operator
/// (same spec, empty state); implementations may rely on that rather than
/// clearing first.
pub trait Snapshot {
    /// Append this operator's state to `buf`, deterministically: equal
    /// logical state ⇒ equal bytes, regardless of arrival order.
    fn snapshot_state(&self, buf: &mut Vec<u8>);

    /// Rebuild state from a reader positioned at bytes written by
    /// [`Snapshot::snapshot_state`] on an operator of the same shape.
    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use crate::window::WindowSpec;
    use crate::{DBToasterJoin, GroupByAggregator, LocalJoin, WindowJoin};
    use squall_common::{tuple, DataType, Schema, SplitMix64, Tuple};
    use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};

    fn chain3() -> MultiJoinSpec {
        let mk = |n: &str| {
            RelationDef::new(n, Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 0)
        };
        MultiJoinSpec::new(
            vec![mk("R"), mk("S"), mk("T")],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
        )
        .unwrap()
    }

    fn snap(s: &impl Snapshot) -> Vec<u8> {
        let mut buf = Vec::new();
        s.snapshot_state(&mut buf);
        buf
    }

    fn restore<S: Snapshot>(s: &mut S, bytes: &[u8]) {
        let mut r = Reader::new(bytes);
        s.restore_state(&mut r).unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn dbtoaster_roundtrips_and_keeps_behaviour() {
        let spec = chain3();
        let mut j = DBToasterJoin::new(&spec);
        let mut rng = SplitMix64::new(7);
        let mut discard = Vec::new();
        let mut inserted: Vec<(usize, Tuple)> = Vec::new();
        for _ in 0..80 {
            let rel = rng.next_below(3);
            let t = tuple![rng.next_range(0, 5), rng.next_range(0, 5)];
            inserted.push((rel, t.clone()));
            j.delta(rel, &t, 1, &mut discard);
            discard.clear();
        }
        // A few retractions so signed multiplicities are exercised.
        for i in [3usize, 10, 25] {
            let (rel, t) = inserted[i].clone();
            j.delta(rel, &t, -1, &mut discard);
            discard.clear();
        }
        let bytes = snap(&j);
        let mut restored = DBToasterJoin::new(&spec);
        restore(&mut restored, &bytes);
        // Byte-identical re-snapshot (the recovery acceptance criterion).
        assert_eq!(snap(&restored), bytes);
        // And identical behaviour on the next delta.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        j.delta(1, &tuple![2, 3], 1, &mut a);
        restored.delta(1, &tuple![2, 3], 1, &mut b);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(j.stored(), restored.stored());
    }

    #[test]
    fn empty_dbtoaster_roundtrips() {
        let spec = chain3();
        let j = DBToasterJoin::new(&spec);
        let bytes = snap(&j);
        let mut restored = DBToasterJoin::new(&spec);
        restore(&mut restored, &bytes);
        assert_eq!(snap(&restored), bytes);
        assert_eq!(restored.stored(), 0);
    }

    #[test]
    fn window_join_roundtrips_live_buffers() {
        let s = Schema::of(&[("a", DataType::Int), ("ts", DataType::Int)]);
        let spec = MultiJoinSpec::new(
            vec![RelationDef::new("R", s.clone(), 0), RelationDef::new("S", s, 0)],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap();
        let mk = || {
            WindowJoin::event_time(
                DBToasterJoin::new(&spec),
                WindowSpec::Sliding { size: 10 },
                &[2, 2],
                &[1, 1],
            )
        };
        let mut w = mk();
        let mut discard = Vec::new();
        for ts in 0..40u64 {
            let rel = (ts % 2) as usize;
            w.insert_weighted(rel, ts, &tuple![(ts % 3) as i64, ts as i64], &mut discard);
            discard.clear();
        }
        let bytes = snap(&w);
        let mut restored = mk();
        restore(&mut restored, &bytes);
        assert_eq!(snap(&restored), bytes);
        assert_eq!(w.live_tuples(), restored.live_tuples());
        // Same results for the next arrival (probes the rebuilt inner
        // state and the restored frontiers/eviction alike).
        let (mut a, mut b) = (Vec::new(), Vec::new());
        w.insert_weighted(0, 40, &tuple![1, 40], &mut a);
        restored.insert_weighted(0, 40, &tuple![1, 40], &mut b);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(w.inner().stored(), restored.inner().stored());
    }

    #[test]
    fn aggregator_roundtrips_avg_state() {
        let mk = || {
            GroupByAggregator::new(
                vec![0],
                vec![
                    AggSpec::count(),
                    AggSpec::sum_col(1),
                    AggSpec::avg(squall_expr::ScalarExpr::col(1)),
                ],
            )
        };
        let mut agg = mk();
        let mut rng = SplitMix64::new(11);
        for _ in 0..50 {
            agg.update(&tuple![rng.next_range(0, 4), rng.next_range(0, 100)]).unwrap();
        }
        agg.retract(&tuple![1, 5]).unwrap();
        let bytes = snap(&agg);
        let mut restored = mk();
        restore(&mut restored, &bytes);
        assert_eq!(snap(&restored), bytes);
        assert_eq!(agg.snapshot(), restored.snapshot());
        // Continued updates agree (AVG needs the raw sums, not the rows).
        let a = agg.update(&tuple![2, 7]).unwrap();
        let b = restored.update(&tuple![2, 7]).unwrap();
        assert_eq!(a, b);
    }
}
