//! The DBToaster-style local multi-way join — higher-order incremental
//! view maintenance (Ahmad, Kennedy, Koch & Nikolic \[9\]; §3.3).
//!
//! "Instead of maintaining only the final result, DBToaster maintains all
//! the intermediate (n−1)-, (n−2)-, …, and 2-way joins. When a new tuple
//! comes, DBToaster updates the intermediate relations, and produces the
//! (delta) result by joining the incoming tuple with the corresponding
//! (n−1)-way materialized join."
//!
//! Concretely, for an acyclic join over relations `R₁..Rₙ`, a view `V_S`
//! is kept for every **connected** subset `S` of relations. When a tuple
//! `t` arrives at `Rᵢ`, for every connected `S ∋ i` (in any order — the
//! probed views never contain `i`):
//!
//! ```text
//! ΔV_S  =  t  ⋈  V_C₁ ⋈ … ⋈ V_Cₖ
//! ```
//!
//! where `C₁..Cₖ` are the connected components of `S ∖ {i}` — the delta
//! factorizes across components because they only connect *through* `Rᵢ`,
//! so the join is `k` independent index probes plus a cross-combination,
//! never a recomputation. The delta for the full relation set is the
//! emitted result.

use squall_common::codec::{self, Reader};
use squall_common::{FxHashMap, Result, Tuple, Value};
use squall_expr::join_cond::CmpOp;
use squall_expr::MultiJoinSpec;

use crate::views::View;
use crate::{LocalJoin, Snapshot};

/// How one segment of a ΔV_S tuple is assembled.
#[derive(Debug, Clone, Copy)]
enum Segment {
    /// Copy the arriving delta tuple.
    Delta,
    /// Copy `len` columns starting at `start` from component `comp`'s
    /// matched view tuple.
    Comp { comp: usize, start: usize, len: usize },
}

/// A probe of one component view.
#[derive(Debug)]
struct CompProbe {
    view_id: usize,
    /// Index on the component view (None ⇒ full scan — happens when only
    /// theta atoms connect the arriving relation to this component).
    index_id: Option<usize>,
    /// Delta-tuple columns forming the probe key (parallel to the index
    /// columns).
    my_cols: Vec<usize>,
    /// Theta filters: (delta column, op, view column).
    theta: Vec<(usize, CmpOp, usize)>,
}

/// The maintenance work for one connected subset on one relation's arrival.
#[derive(Debug)]
struct SubsetPlan {
    /// Target view; `None` means this is the full relation set — deltas are
    /// emitted as query results instead of stored.
    view_id: Option<usize>,
    comps: Vec<CompProbe>,
    assembly: Vec<Segment>,
}

/// The DBToaster local operator. Build once per machine from the join
/// spec; see [`LocalJoin`].
pub struct DBToasterJoin {
    arities: Vec<usize>,
    views: Vec<View>,
    plans: Vec<Vec<SubsetPlan>>,
    /// Probe-key scratch reused across arrivals (amortizes to zero
    /// allocations on the per-tuple hot path).
    scratch_key: Vec<Value>,
    /// Pooled per-component match buffers; inner vectors keep their
    /// capacity between arrivals.
    scratch_matches: Vec<Vec<(Tuple, i64)>>,
    /// Odometer scratch for the cross-combination loop.
    scratch_idx: Vec<usize>,
}

impl DBToasterJoin {
    /// Precompute views, indexes and delta plans for the join.
    ///
    /// Supports acyclic (and, conservatively, cyclic — extra atoms become
    /// filters on the probes) connected join graphs over up to 30
    /// relations (masks are `u32`); practical queries use 2–6.
    pub fn new(spec: &MultiJoinSpec) -> DBToasterJoin {
        let n = spec.n_relations();
        assert!((1..=30).contains(&n), "unsupported relation count {n}");
        let arities: Vec<usize> = spec.relations.iter().map(|r| r.schema.arity()).collect();
        let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

        // Adjacency from atoms.
        let mut adj = vec![0u32; n];
        for a in &spec.atoms {
            adj[a.left_rel] |= 1 << a.right_rel;
            adj[a.right_rel] |= 1 << a.left_rel;
        }
        let connected = |mask: u32| -> bool {
            if mask == 0 {
                return false;
            }
            let start = mask.trailing_zeros() as usize;
            let mut seen = 1u32 << start;
            let mut frontier = seen;
            while frontier != 0 {
                let mut next = 0u32;
                let mut f = frontier;
                while f != 0 {
                    let r = f.trailing_zeros() as usize;
                    f &= f - 1;
                    next |= adj[r] & mask & !seen;
                }
                seen |= next;
                frontier = next;
            }
            seen == mask
        };
        let components = |mask: u32| -> Vec<u32> {
            let mut rest = mask;
            let mut comps = Vec::new();
            while rest != 0 {
                let start = rest.trailing_zeros() as usize;
                let mut seen = 1u32 << start;
                let mut frontier = seen;
                while frontier != 0 {
                    let mut next = 0u32;
                    let mut f = frontier;
                    while f != 0 {
                        let r = f.trailing_zeros() as usize;
                        f &= f - 1;
                        next |= adj[r] & mask & !seen;
                    }
                    seen |= next;
                    frontier = next;
                }
                comps.push(seen);
                rest &= !seen;
            }
            comps
        };
        let members_of =
            |mask: u32| -> Vec<usize> { (0..n).filter(|&r| mask & (1 << r) != 0).collect() };

        // Views for every connected proper subset.
        let mut views: Vec<View> = Vec::new();
        let mut view_of: FxHashMap<u32, usize> = FxHashMap::default();
        for mask in 1..full {
            if connected(mask) {
                view_of.insert(mask, views.len());
                views.push(View::new(members_of(mask), &arities));
            }
        }

        // Delta plans per arriving relation.
        let mut plans: Vec<Vec<SubsetPlan>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut rel_plans = Vec::new();
            for mask in 1..=full {
                if mask & (1 << i) == 0 || !connected(mask) {
                    continue;
                }
                let rest = mask & !(1 << i);
                let comp_masks = components(rest);
                // Probes.
                let mut comps = Vec::with_capacity(comp_masks.len());
                for &cm in &comp_masks {
                    let vid = view_of[&cm];
                    let mut my_cols = Vec::new();
                    let mut view_cols = Vec::new();
                    let mut theta = Vec::new();
                    for (other, my_col, op, other_col) in spec.atoms_of(i) {
                        if cm & (1 << other) == 0 {
                            continue;
                        }
                        let view_col = views[vid].offset_of(other) + other_col;
                        if op == CmpOp::Eq {
                            my_cols.push(my_col);
                            view_cols.push(view_col);
                        } else {
                            theta.push((my_col, op, view_col));
                        }
                    }
                    let index_id = if view_cols.is_empty() {
                        None
                    } else {
                        Some(views[vid].ensure_index(view_cols))
                    };
                    comps.push(CompProbe { view_id: vid, index_id, my_cols, theta });
                }
                // Assembly: S's members in sorted order, each drawn from the
                // delta or from its component's matched tuple.
                let mut assembly = Vec::new();
                for &m in &members_of(mask) {
                    if m == i {
                        assembly.push(Segment::Delta);
                    } else {
                        let (ci, &cm) = comp_masks
                            .iter()
                            .enumerate()
                            .find(|(_, &cm)| cm & (1 << m) != 0)
                            .expect("member belongs to a component");
                        let comp_view = &views[view_of[&cm]];
                        assembly.push(Segment::Comp {
                            comp: ci,
                            start: comp_view.offset_of(m),
                            len: arities[m],
                        });
                    }
                }
                let view_id = if mask == full { None } else { Some(view_of[&mask]) };
                rel_plans.push(SubsetPlan { view_id, comps, assembly });
            }
            plans.push(rel_plans);
        }
        DBToasterJoin {
            arities,
            views,
            plans,
            scratch_key: Vec::new(),
            scratch_matches: Vec::new(),
            scratch_idx: Vec::new(),
        }
    }

    /// Stored tuples in a specific intermediate view (diagnostics).
    pub fn view_sizes(&self) -> Vec<(Vec<usize>, usize)> {
        self.views.iter().map(|v| (v.members.clone(), v.len())).collect()
    }

    /// Apply a **signed** delta `(tuple, mult)` to relation `rel` and push
    /// the resulting signed result deltas into `out` — the Z-set face of
    /// the operator used by standing materialized views: `mult = +1`
    /// inserts, `mult = -1` retracts, and emitted multiplicities carry the
    /// sign through (a retraction of a stored match emits a negative
    /// delta). Intermediate views are maintained exactly as for
    /// [`LocalJoin::insert`]/[`LocalJoin::remove`].
    pub fn delta(&mut self, rel: usize, tuple: &Tuple, mult: i64, out: &mut Vec<(Tuple, i64)>) {
        self.apply_delta(rel, tuple, mult, Sink::Signed(out));
    }

    fn apply_delta(&mut self, rel: usize, tuple: &Tuple, mult: i64, mut out: Sink<'_>) {
        debug_assert_eq!(tuple.arity(), self.arities[rel], "arity mismatch for relation {rel}");
        // Scratch buffers move out of `self` for the duration of the call
        // so the plan iteration below can still borrow `self.plans`; they
        // are restored (capacity intact) on every exit path.
        let mut key_buf = std::mem::take(&mut self.scratch_key);
        let mut match_bufs = std::mem::take(&mut self.scratch_matches);
        let mut idx = std::mem::take(&mut self.scratch_idx);
        for plan in &self.plans[rel] {
            // Probe every component; collect owned matches into pooled
            // buffers (the views are mutated afterwards).
            let mut used = 0;
            let mut dead = false;
            for cp in &plan.comps {
                let view = &self.views[cp.view_id];
                let filter = |t: &Tuple| {
                    cp.theta.iter().all(|&(mc, op, vc)| op.eval(tuple.get(mc), t.get(vc)))
                };
                if match_bufs.len() == used {
                    match_bufs.push(Vec::new());
                }
                let found = &mut match_bufs[used];
                found.clear();
                match cp.index_id {
                    Some(ix) => {
                        key_buf.clear();
                        key_buf.extend(cp.my_cols.iter().map(|&c| tuple.get(c).clone()));
                        found.extend(
                            view.probe(ix, &key_buf)
                                .filter(|(t, _)| filter(t))
                                .map(|(t, m)| (t.clone(), m)),
                        );
                    }
                    None => found.extend(
                        view.scan().filter(|(t, _)| filter(t)).map(|(t, m)| (t.clone(), m)),
                    ),
                }
                if found.is_empty() {
                    dead = true;
                    break;
                }
                used += 1;
            }
            if dead {
                continue;
            }
            let matches = &match_bufs[..used];
            // Cross-combine the component matches.
            idx.clear();
            idx.resize(matches.len(), 0);
            loop {
                let mut values = Vec::new();
                let mut delta_mult = mult;
                for seg in &plan.assembly {
                    match *seg {
                        Segment::Delta => values.extend_from_slice(tuple.values()),
                        Segment::Comp { comp, start, len } => {
                            let (t, _) = &matches[comp][idx[comp]];
                            values.extend_from_slice(&t.values()[start..start + len]);
                        }
                    }
                }
                for (c, &i) in idx.iter().enumerate() {
                    delta_mult *= matches[c][i].1;
                }
                let merged = Tuple::new(values);
                match plan.view_id {
                    Some(vid) => self.views[vid].update(&merged, delta_mult),
                    None => match &mut out {
                        Sink::None => {}
                        Sink::Expand(v) => {
                            for _ in 0..delta_mult {
                                v.push(merged.clone());
                            }
                        }
                        Sink::Weighted(v) => {
                            if delta_mult > 0 {
                                v.push((merged.clone(), delta_mult));
                            }
                        }
                        Sink::Signed(v) => {
                            if delta_mult != 0 {
                                v.push((merged.clone(), delta_mult));
                            }
                        }
                    },
                }
                // Advance the odometer.
                let mut c = 0;
                loop {
                    if c == idx.len() {
                        break;
                    }
                    idx[c] += 1;
                    if idx[c] < matches[c].len() {
                        break;
                    }
                    idx[c] = 0;
                    c += 1;
                }
                if c == idx.len() {
                    break;
                }
            }
        }
        self.scratch_key = key_buf;
        self.scratch_matches = match_bufs;
        self.scratch_idx = idx;
    }
}

impl Snapshot for DBToasterJoin {
    /// Base relations only: every intermediate view is a pure function of
    /// the singleton views, so restore replays the bases through the
    /// delta path. Rows are sorted so equal state means equal bytes.
    fn snapshot_state(&self, buf: &mut Vec<u8>) {
        codec::put_u32(buf, self.arities.len() as u32);
        for rel in 0..self.arities.len() {
            let base = self.views.iter().find(|v| v.members.as_slice() == [rel]);
            let mut rows: Vec<(&Tuple, i64)> = match base {
                Some(v) => v.scan().collect(),
                None => Vec::new(), // single-relation join: stateless
            };
            rows.sort_by(|a, b| a.0.cmp(b.0));
            codec::put_u32(buf, rows.len() as u32);
            for (t, m) in rows {
                codec::put_tuple(buf, t);
                codec::put_i64(buf, m);
            }
        }
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        let n = r.len()?;
        let mut discard = Vec::new();
        for rel in 0..n {
            let rows = r.len()?;
            for _ in 0..rows {
                let t = codec::get_tuple(r)?;
                let m = r.i64()?;
                self.delta(rel, &t, m, &mut discard);
                discard.clear();
            }
        }
        Ok(())
    }
}

/// Where result deltas go.
enum Sink<'a> {
    None,
    Expand(&'a mut Vec<Tuple>),
    Weighted(&'a mut Vec<(Tuple, i64)>),
    /// Z-set output: results carry their signed multiplicity, retractions
    /// included (the standing-view delta plane).
    Signed(&'a mut Vec<(Tuple, i64)>),
}

impl LocalJoin for DBToasterJoin {
    fn insert(&mut self, rel: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        self.apply_delta(rel, tuple, 1, Sink::Expand(out));
    }

    fn remove(&mut self, rel: usize, tuple: &Tuple) {
        self.apply_delta(rel, tuple, -1, Sink::None);
    }

    fn stored(&self) -> usize {
        self.views.iter().map(|v| v.len()).sum()
    }

    fn insert_weighted(&mut self, rel: usize, tuple: &Tuple, out: &mut Vec<(Tuple, i64)>) {
        self.apply_delta(rel, tuple, 1, Sink::Weighted(out));
    }
}

/// DBToaster with *aggregated views* — the higher-order IVM trick that
/// makes the §3.3/Figure 8 gap: every relation is projected onto the
/// columns that future probes or the downstream aggregate actually need,
/// so duplicate keys collapse into multiplicities and a hot-key arrival
/// probes O(distinct keys) instead of enumerating O(matches) stored
/// tuples. Results come out as `(projected tuple, multiplicity)` — exactly
/// what COUNT/SUM consumers need.
pub struct AggregatedDBToaster {
    inner: DBToasterJoin,
    /// Per relation: the original columns retained (sorted).
    kept: Vec<Vec<usize>>,
}

impl AggregatedDBToaster {
    /// Keep only join-key columns plus `extra[rel]` (columns the
    /// downstream aggregate reads). Correctness: projection preserves the
    /// join result's *multiset cardinality* per retained column
    /// combination, which is exactly what weighted consumers use.
    pub fn new(spec: &MultiJoinSpec, extra: &[Vec<usize>]) -> AggregatedDBToaster {
        use squall_expr::RelationDef;
        assert_eq!(extra.len(), spec.n_relations());
        let mut kept: Vec<Vec<usize>> = vec![Vec::new(); spec.n_relations()];
        for a in &spec.atoms {
            for &(r, c) in &[(a.left_rel, a.left_col), (a.right_rel, a.right_col)] {
                if !kept[r].contains(&c) {
                    kept[r].push(c);
                }
            }
        }
        for (r, cols) in extra.iter().enumerate() {
            for &c in cols {
                if !kept[r].contains(&c) {
                    kept[r].push(c);
                }
            }
        }
        for (r, cols) in kept.iter_mut().enumerate() {
            if cols.is_empty() {
                cols.push(0);
            }
            cols.sort_unstable();
            let _ = r;
        }
        // Projected spec: schemas narrowed, atoms remapped.
        let relations: Vec<RelationDef> = spec
            .relations
            .iter()
            .enumerate()
            .map(|(r, def)| {
                RelationDef::new(def.name.clone(), def.schema.project(&kept[r]), def.est_size)
            })
            .collect();
        let atoms = spec
            .atoms
            .iter()
            .map(|a| squall_expr::JoinAtom {
                left_rel: a.left_rel,
                left_col: kept[a.left_rel].iter().position(|&c| c == a.left_col).unwrap(),
                op: a.op,
                right_rel: a.right_rel,
                right_col: kept[a.right_rel].iter().position(|&c| c == a.right_col).unwrap(),
            })
            .collect();
        let projected =
            MultiJoinSpec::new(relations, atoms).expect("projection preserves validity");
        AggregatedDBToaster { inner: DBToasterJoin::new(&projected), kept }
    }

    /// Join-keys-only variant (COUNT(*) queries).
    pub fn minimal(spec: &MultiJoinSpec) -> AggregatedDBToaster {
        AggregatedDBToaster::new(spec, &vec![Vec::new(); spec.n_relations()])
    }
}

impl Snapshot for AggregatedDBToaster {
    /// The projection is configuration, not state: only the inner join's
    /// (already projected) bases ship.
    fn snapshot_state(&self, buf: &mut Vec<u8>) {
        self.inner.snapshot_state(buf)
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        self.inner.restore_state(r)
    }
}

impl LocalJoin for AggregatedDBToaster {
    fn insert(&mut self, rel: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        self.inner.insert(rel, &tuple.project(&self.kept[rel]), out)
    }

    fn remove(&mut self, rel: usize, tuple: &Tuple) {
        self.inner.remove(rel, &tuple.project(&self.kept[rel]))
    }

    fn stored(&self) -> usize {
        self.inner.stored()
    }

    fn insert_weighted(&mut self, rel: usize, tuple: &Tuple, out: &mut Vec<(Tuple, i64)>) {
        self.inner.insert_weighted(rel, &tuple.project(&self.kept[rel]), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{naive_join, same_multiset};
    use squall_common::{tuple, DataType, Schema, SplitMix64};
    use squall_expr::{JoinAtom, RelationDef};

    fn run_online(join: &mut dyn LocalJoin, relations: &[Vec<Tuple>], seed: u64) -> Vec<Tuple> {
        // Interleave arrivals in a deterministic random order — online
        // operators must be order-insensitive in their final output.
        let mut arrivals: Vec<(usize, Tuple)> = relations
            .iter()
            .enumerate()
            .flat_map(|(r, ts)| ts.iter().map(move |t| (r, t.clone())))
            .collect();
        SplitMix64::new(seed).shuffle(&mut arrivals);
        let mut out = Vec::new();
        for (rel, t) in arrivals {
            join.insert(rel, &t, &mut out);
        }
        out
    }

    fn chain3() -> MultiJoinSpec {
        let mk = |n: &str| {
            RelationDef::new(n, Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 0)
        };
        MultiJoinSpec::new(
            vec![mk("R"), mk("S"), mk("T")],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
        )
        .unwrap()
    }

    fn rand_rel(n: usize, key_dom: i64, rng: &mut SplitMix64) -> Vec<Tuple> {
        (0..n).map(|_| tuple![rng.next_range(0, key_dom), rng.next_range(0, key_dom)]).collect()
    }

    #[test]
    fn two_way_matches_oracle() {
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 0),
                RelationDef::new("S", Schema::of(&[("a", DataType::Int)]), 0),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap();
        let mut rng = SplitMix64::new(1);
        let r: Vec<Tuple> = (0..60).map(|_| tuple![rng.next_range(0, 15)]).collect();
        let s: Vec<Tuple> = (0..60).map(|_| tuple![rng.next_range(0, 15)]).collect();
        let mut j = DBToasterJoin::new(&spec);
        let online = run_online(&mut j, &[r.clone(), s.clone()], 7);
        let oracle = naive_join(&spec, &[r, s]);
        assert!(same_multiset(&online, &oracle), "{} vs {}", online.len(), oracle.len());
        assert!(!online.is_empty());
    }

    #[test]
    fn three_way_chain_matches_oracle() {
        let spec = chain3();
        let mut rng = SplitMix64::new(2);
        let rels =
            vec![rand_rel(40, 8, &mut rng), rand_rel(40, 8, &mut rng), rand_rel(40, 8, &mut rng)];
        let mut j = DBToasterJoin::new(&spec);
        let online = run_online(&mut j, &rels, 9);
        let oracle = naive_join(&spec, &rels);
        assert!(same_multiset(&online, &oracle), "{} vs {}", online.len(), oracle.len());
        assert!(!online.is_empty());
    }

    #[test]
    fn intermediate_views_are_materialized() {
        // For R ⋈ S ⋈ T, DBToaster keeps {R}, {S}, {T}, {R,S}, {S,T} —
        // and NOT the disconnected {R,T} (that would be a cross product).
        let spec = chain3();
        let j = DBToasterJoin::new(&spec);
        let members: Vec<Vec<usize>> = j.view_sizes().into_iter().map(|(m, _)| m).collect();
        assert!(members.contains(&vec![0]));
        assert!(members.contains(&vec![0, 1]));
        assert!(members.contains(&vec![1, 2]));
        assert!(!members.contains(&vec![0, 2]), "disconnected subsets must not be views");
        assert_eq!(members.len(), 5);
    }

    #[test]
    fn four_way_chain_matches_oracle() {
        let mk = |n: &str| {
            RelationDef::new(n, Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 0)
        };
        let spec = MultiJoinSpec::new(
            vec![mk("R"), mk("S"), mk("T"), mk("U")],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0), JoinAtom::eq(2, 1, 3, 0)],
        )
        .unwrap();
        let mut rng = SplitMix64::new(5);
        let rels: Vec<Vec<Tuple>> = (0..4).map(|_| rand_rel(25, 5, &mut rng)).collect();
        let mut j = DBToasterJoin::new(&spec);
        let online = run_online(&mut j, &rels, 11);
        let oracle = naive_join(&spec, &rels);
        assert!(same_multiset(&online, &oracle), "{} vs {}", online.len(), oracle.len());
        assert!(!online.is_empty());
    }

    #[test]
    fn star_join_cross_components() {
        // F(a,b) ⋈ D1(a) ⋈ D2(b): on an F arrival the rest {D1, D2} is
        // disconnected — the delta must cross-combine two probes.
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("F", Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 0),
                RelationDef::new("D1", Schema::of(&[("a", DataType::Int)]), 0),
                RelationDef::new("D2", Schema::of(&[("b", DataType::Int)]), 0),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0), JoinAtom::eq(0, 1, 2, 0)],
        )
        .unwrap();
        let f = vec![tuple![1, 2], tuple![1, 3]];
        let d1 = vec![tuple![1], tuple![1]];
        let d2 = vec![tuple![2], tuple![3]];
        let mut j = DBToasterJoin::new(&spec);
        let online = run_online(&mut j, &[f.clone(), d1.clone(), d2.clone()], 13);
        let oracle = naive_join(&spec, &[f, d1, d2]);
        assert!(same_multiset(&online, &oracle), "{} vs {}", online.len(), oracle.len());
        assert_eq!(online.len(), 4);
    }

    #[test]
    fn theta_join_atoms_as_filters() {
        // R.a = S.a AND R.b < S.b — mixed condition (§3.3's example shape).
        let mk = |n: &str| {
            RelationDef::new(n, Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 0)
        };
        let spec = MultiJoinSpec::new(
            vec![mk("R"), mk("S")],
            vec![
                JoinAtom::eq(0, 0, 1, 0),
                JoinAtom { left_rel: 0, left_col: 1, op: CmpOp::Lt, right_rel: 1, right_col: 1 },
            ],
        )
        .unwrap();
        let mut rng = SplitMix64::new(21);
        let rels = vec![rand_rel(50, 6, &mut rng), rand_rel(50, 6, &mut rng)];
        let mut j = DBToasterJoin::new(&spec);
        let online = run_online(&mut j, &rels, 3);
        let oracle = naive_join(&spec, &rels);
        assert!(same_multiset(&online, &oracle), "{} vs {}", online.len(), oracle.len());
        assert!(!online.is_empty());
    }

    #[test]
    fn pure_inequality_join_uses_scans() {
        let mk = |n: &str| RelationDef::new(n, Schema::of(&[("a", DataType::Int)]), 0);
        let spec = MultiJoinSpec::new(
            vec![mk("R"), mk("S")],
            vec![JoinAtom { left_rel: 0, left_col: 0, op: CmpOp::Lt, right_rel: 1, right_col: 0 }],
        )
        .unwrap();
        let r: Vec<Tuple> = (0..20).map(|i| tuple![i]).collect();
        let s: Vec<Tuple> = (0..20).map(|i| tuple![i]).collect();
        let mut j = DBToasterJoin::new(&spec);
        let online = run_online(&mut j, &[r.clone(), s.clone()], 17);
        let oracle = naive_join(&spec, &[r, s]);
        assert!(same_multiset(&online, &oracle));
        assert_eq!(online.len(), 20 * 19 / 2);
    }

    #[test]
    fn duplicates_multiply() {
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 0),
                RelationDef::new("S", Schema::of(&[("a", DataType::Int)]), 0),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap();
        let mut j = DBToasterJoin::new(&spec);
        let mut out = Vec::new();
        j.insert(0, &tuple![7], &mut out);
        j.insert(0, &tuple![7], &mut out);
        assert!(out.is_empty());
        j.insert(1, &tuple![7], &mut out);
        assert_eq!(out.len(), 2, "two stored R copies × one S arrival");
    }

    #[test]
    fn removal_stops_future_matches() {
        let spec = chain3();
        let mut j = DBToasterJoin::new(&spec);
        let mut out = Vec::new();
        j.insert(0, &tuple![0, 1], &mut out);
        j.insert(1, &tuple![1, 2], &mut out);
        assert!(out.is_empty());
        j.remove(0, &tuple![0, 1]);
        j.insert(2, &tuple![2, 9], &mut out);
        assert!(out.is_empty(), "removed R tuple must not contribute");
        // Re-add: now the triple completes on the T side already present.
        j.insert(0, &tuple![0, 1], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], tuple![0, 1, 1, 2, 2, 9]);
    }

    #[test]
    fn removal_keeps_views_consistent() {
        let spec = chain3();
        let mut rng = SplitMix64::new(33);
        let rels =
            [rand_rel(30, 5, &mut rng), rand_rel(30, 5, &mut rng), rand_rel(30, 5, &mut rng)];
        let mut j = DBToasterJoin::new(&spec);
        let mut out = Vec::new();
        for (rel, ts) in rels.iter().enumerate() {
            for t in ts {
                j.insert(rel, t, &mut out);
            }
        }
        // Remove everything; all views must drain to empty.
        for (rel, ts) in rels.iter().enumerate() {
            for t in ts {
                j.remove(rel, t);
            }
        }
        assert_eq!(j.stored(), 0, "views must be empty after removing all input");
    }

    #[test]
    fn single_relation_emits_identity() {
        let spec = MultiJoinSpec::new(
            vec![RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 0)],
            vec![],
        )
        .unwrap();
        let mut j = DBToasterJoin::new(&spec);
        let mut out = Vec::new();
        j.insert(0, &tuple![5], &mut out);
        assert_eq!(out, vec![tuple![5]]);
    }

    #[test]
    fn signed_deltas_carry_retractions() {
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 0),
                RelationDef::new("S", Schema::of(&[("a", DataType::Int)]), 0),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap();
        let mut j = DBToasterJoin::new(&spec);
        let mut out = Vec::new();
        j.delta(0, &tuple![7], 1, &mut out);
        assert!(out.is_empty());
        j.delta(1, &tuple![7], 1, &mut out);
        assert_eq!(out, vec![(tuple![7, 7], 1)]);
        out.clear();
        // Retracting the R side must emit a negative result delta.
        j.delta(0, &tuple![7], -1, &mut out);
        assert_eq!(out, vec![(tuple![7, 7], -1)]);
        assert_eq!(j.view_sizes().iter().map(|(_, n)| n).sum::<usize>(), 1, "only S remains");
    }

    #[test]
    fn stored_counts_views() {
        let spec = chain3();
        let mut j = DBToasterJoin::new(&spec);
        let mut out = Vec::new();
        j.insert(0, &tuple![0, 1], &mut out);
        assert_eq!(j.stored(), 1); // V{R}
        j.insert(1, &tuple![1, 2], &mut out);
        // V{R}, V{S}, V{RS}.
        assert_eq!(j.stored(), 3);
    }
}
