//! The traditional online local join (§3.3): indexes on the *base*
//! relations only.
//!
//! "Upon tuple arrival, we store the tuple, update all of its indexes, and
//! lookup indexes on the opposite relation(s) in order to produce result
//! tuples." For 2-way joins this is the classic symmetric hash join \[69\];
//! for n-way joins every arrival must *recompute* the (n−1)-way remainder
//! by cascading base-relation probes — the recomputation DBToaster
//! amortizes away, and the reason Figure 8 shows an order-of-magnitude gap
//! that "deepens with the increase in the number of relations".

use squall_common::{Tuple, Value};
use squall_expr::join_cond::CmpOp;
use squall_expr::MultiJoinSpec;

use crate::views::View;
use crate::LocalJoin;

/// Where a probe key / filter operand comes from during the cascade.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// The arriving tuple.
    Delta,
    /// The relation bound at cascade step `k`.
    Bound(usize),
}

/// One step of the probe cascade: bind relation `rel` by probing its base
/// store.
#[derive(Debug)]
struct Step {
    rel: usize,
    /// `(source, source column)` pairs forming the equi probe key.
    key: Vec<(Slot, usize)>,
    index_id: Option<usize>,
    /// Theta filters `(source, source col, op, candidate col)`.
    theta: Vec<(Slot, usize, CmpOp, usize)>,
}

/// The traditional indexed symmetric n-way join.
pub struct TraditionalJoin {
    n: usize,
    bases: Vec<View>,
    /// `plans[i]` = cascade to run when a tuple arrives at relation `i`.
    plans: Vec<Vec<Step>>,
    /// Precomputed output ordering: for each arrival relation, the cascade
    /// position (or Delta) supplying each output relation.
    emit_order: Vec<Vec<Slot>>,
}

impl TraditionalJoin {
    pub fn new(spec: &MultiJoinSpec) -> TraditionalJoin {
        let n = spec.n_relations();
        let arities: Vec<usize> = spec.relations.iter().map(|r| r.schema.arity()).collect();
        let mut bases: Vec<View> = (0..n).map(|r| View::new(vec![r], &arities)).collect();

        let mut plans = Vec::with_capacity(n);
        let mut emit_order = Vec::with_capacity(n);
        for i in 0..n {
            // BFS order from i so every probed relation touches the bound set.
            let mut order: Vec<usize> = Vec::new();
            let mut bound: Vec<usize> = vec![i];
            while order.len() + 1 < n {
                let next = (0..n)
                    .filter(|r| !bound.contains(r))
                    .find(|&r| {
                        spec.atoms.iter().any(|a| {
                            (a.left_rel == r && bound.contains(&a.right_rel))
                                || (a.right_rel == r && bound.contains(&a.left_rel))
                        })
                    })
                    // Disconnected specs degenerate to cross products;
                    // take any remaining relation (scan probe).
                    .unwrap_or_else(|| (0..n).find(|r| !bound.contains(r)).unwrap());
                order.push(next);
                bound.push(next);
            }
            // Build the steps.
            let slot_of = |rel: usize, order: &[usize]| -> Slot {
                if rel == i {
                    Slot::Delta
                } else {
                    Slot::Bound(order.iter().position(|&r| r == rel).expect("bound"))
                }
            };
            let mut steps = Vec::with_capacity(order.len());
            for (k, &j) in order.iter().enumerate() {
                let mut key = Vec::new();
                let mut index_cols = Vec::new();
                let mut theta = Vec::new();
                for a in &spec.atoms {
                    // Atoms between j and an already-bound relation.
                    let (src_rel, src_col, op, j_col) = if a.left_rel == j {
                        (a.right_rel, a.right_col, a.op.flip(), a.left_col)
                    } else if a.right_rel == j {
                        (a.left_rel, a.left_col, a.op, a.right_col)
                    } else {
                        continue;
                    };
                    let src_bound = src_rel == i || order[..k].contains(&src_rel);
                    if !src_bound {
                        continue;
                    }
                    let slot = slot_of(src_rel, &order);
                    if op == CmpOp::Eq {
                        key.push((slot, src_col));
                        index_cols.push(j_col);
                    } else {
                        // op is oriented source-side: source op candidate.
                        theta.push((slot, src_col, op, j_col));
                    }
                }
                let index_id = if index_cols.is_empty() {
                    None
                } else {
                    Some(bases[j].ensure_index(index_cols))
                };
                steps.push(Step { rel: j, key, index_id, theta });
            }
            // Output assembly order.
            let emits: Vec<Slot> = (0..n)
                .map(|r| {
                    if r == i {
                        Slot::Delta
                    } else {
                        Slot::Bound(order.iter().position(|&x| x == r).unwrap())
                    }
                })
                .collect();
            plans.push(steps);
            emit_order.push(emits);
        }
        TraditionalJoin { n, bases, plans, emit_order }
    }

    fn cascade(
        &self,
        rel: usize,
        tuple: &Tuple,
        step: usize,
        bound: &mut Vec<(Tuple, i64)>,
        out: &mut Vec<Tuple>,
    ) {
        let steps = &self.plans[rel];
        if step == steps.len() {
            // Emit: one result per multiplicity product.
            let mut mult: i64 = bound.iter().map(|(_, m)| m).product();
            let mut values = Vec::new();
            for slot in &self.emit_order[rel] {
                match slot {
                    Slot::Delta => values.extend_from_slice(tuple.values()),
                    Slot::Bound(k) => values.extend_from_slice(bound[*k].0.values()),
                }
            }
            let result = Tuple::new(values);
            while mult > 0 {
                out.push(result.clone());
                mult -= 1;
            }
            return;
        }
        let st = &steps[step];
        let value_of = |slot: Slot, col: usize, bound: &Vec<(Tuple, i64)>| -> Value {
            match slot {
                Slot::Delta => tuple.get(col).clone(),
                Slot::Bound(k) => bound[k].0.get(col).clone(),
            }
        };
        let passes = |cand: &Tuple, bound: &Vec<(Tuple, i64)>| -> bool {
            st.theta.iter().all(|&(slot, scol, op, ccol)| {
                op.eval(&value_of(slot, scol, bound), cand.get(ccol))
            })
        };
        // The recomputation the paper criticizes: every arrival probes the
        // base stores and re-derives all partial joins.
        let candidates: Vec<(Tuple, i64)> = match st.index_id {
            Some(ix) => {
                let key: Vec<Value> =
                    st.key.iter().map(|&(slot, col)| value_of(slot, col, bound)).collect();
                self.bases[st.rel]
                    .probe(ix, &key)
                    .filter(|(t, _)| passes(t, bound))
                    .map(|(t, m)| (t.clone(), m))
                    .collect()
            }
            None => self.bases[st.rel]
                .scan()
                .filter(|(t, _)| passes(t, bound))
                .map(|(t, m)| (t.clone(), m))
                .collect(),
        };
        for cand in candidates {
            bound.push(cand);
            self.cascade(rel, tuple, step + 1, bound, out);
            bound.pop();
        }
    }
}

impl LocalJoin for TraditionalJoin {
    fn insert(&mut self, rel: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        // Produce results completed by this arrival (against stored state),
        // then store the tuple.
        if self.n == 1 {
            out.push(tuple.clone());
        } else {
            let mut bound = Vec::with_capacity(self.n - 1);
            self.cascade(rel, tuple, 0, &mut bound, out);
        }
        self.bases[rel].update(tuple, 1);
    }

    fn remove(&mut self, rel: usize, tuple: &Tuple) {
        self.bases[rel].update(tuple, -1);
    }

    fn stored(&self) -> usize {
        self.bases.iter().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbtoaster::DBToasterJoin;
    use crate::naive::{naive_join, same_multiset};
    use squall_common::{tuple, DataType, Schema, SplitMix64};
    use squall_expr::{JoinAtom, RelationDef};

    fn rand_rel(n: usize, dom: i64, rng: &mut SplitMix64) -> Vec<Tuple> {
        (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
    }

    fn run_online(join: &mut dyn LocalJoin, relations: &[Vec<Tuple>], seed: u64) -> Vec<Tuple> {
        let mut arrivals: Vec<(usize, Tuple)> = relations
            .iter()
            .enumerate()
            .flat_map(|(r, ts)| ts.iter().map(move |t| (r, t.clone())))
            .collect();
        SplitMix64::new(seed).shuffle(&mut arrivals);
        let mut out = Vec::new();
        for (rel, t) in arrivals {
            join.insert(rel, &t, &mut out);
        }
        out
    }

    fn chain(n: usize) -> MultiJoinSpec {
        let mk = |i: usize| {
            RelationDef::new(
                format!("R{i}"),
                Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
                0,
            )
        };
        MultiJoinSpec::new(
            (0..n).map(mk).collect(),
            (0..n - 1).map(|i| JoinAtom::eq(i, 1, i + 1, 0)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn symmetric_two_way_matches_oracle() {
        let spec = chain(2);
        let mut rng = SplitMix64::new(4);
        let rels = vec![rand_rel(80, 10, &mut rng), rand_rel(80, 10, &mut rng)];
        let mut j = TraditionalJoin::new(&spec);
        let online = run_online(&mut j, &rels, 2);
        let oracle = naive_join(&spec, &rels);
        assert!(same_multiset(&online, &oracle), "{} vs {}", online.len(), oracle.len());
        assert!(!online.is_empty());
    }

    #[test]
    fn three_way_matches_oracle_and_dbtoaster() {
        let spec = chain(3);
        let mut rng = SplitMix64::new(6);
        let rels: Vec<Vec<Tuple>> = (0..3).map(|_| rand_rel(35, 6, &mut rng)).collect();
        let mut tj = TraditionalJoin::new(&spec);
        let mut dj = DBToasterJoin::new(&spec);
        let a = run_online(&mut tj, &rels, 8);
        let b = run_online(&mut dj, &rels, 8);
        let oracle = naive_join(&spec, &rels);
        assert!(same_multiset(&a, &oracle), "traditional {} vs {}", a.len(), oracle.len());
        assert!(same_multiset(&b, &oracle), "dbtoaster {} vs {}", b.len(), oracle.len());
        assert!(!oracle.is_empty());
    }

    #[test]
    fn theta_only_join() {
        let mk = |n: &str| RelationDef::new(n, Schema::of(&[("a", DataType::Int)]), 0);
        let spec = MultiJoinSpec::new(
            vec![mk("R"), mk("S")],
            vec![JoinAtom { left_rel: 0, left_col: 0, op: CmpOp::Gt, right_rel: 1, right_col: 0 }],
        )
        .unwrap();
        let r: Vec<Tuple> = (0..15).map(|i| tuple![i]).collect();
        let s: Vec<Tuple> = (0..15).map(|i| tuple![i]).collect();
        let mut j = TraditionalJoin::new(&spec);
        let online = run_online(&mut j, &[r.clone(), s.clone()], 5);
        assert_eq!(online.len(), 15 * 14 / 2);
    }

    #[test]
    fn mixed_condition_paper_example() {
        // R.A = S.A AND 2·R.B < S.C (§3.3): the equi part uses the hash
        // index, the inequality filters. (The arithmetic lives in plan-level
        // expressions; at the join level this is R.b < S.b with pre-scaled
        // values.)
        let mk = |n: &str| {
            RelationDef::new(n, Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 0)
        };
        let spec = MultiJoinSpec::new(
            vec![mk("R"), mk("S")],
            vec![
                JoinAtom::eq(0, 0, 1, 0),
                JoinAtom { left_rel: 0, left_col: 1, op: CmpOp::Lt, right_rel: 1, right_col: 1 },
            ],
        )
        .unwrap();
        let mut rng = SplitMix64::new(10);
        let rels = vec![rand_rel(60, 8, &mut rng), rand_rel(60, 8, &mut rng)];
        let mut j = TraditionalJoin::new(&spec);
        let online = run_online(&mut j, &rels, 3);
        let oracle = naive_join(&spec, &rels);
        assert!(same_multiset(&online, &oracle));
    }

    #[test]
    fn star_schema_cascade() {
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("F", Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 0),
                RelationDef::new("D1", Schema::of(&[("a", DataType::Int)]), 0),
                RelationDef::new("D2", Schema::of(&[("b", DataType::Int)]), 0),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0), JoinAtom::eq(0, 1, 2, 0)],
        )
        .unwrap();
        let mut rng = SplitMix64::new(12);
        let f = rand_rel(50, 6, &mut rng);
        let d1: Vec<Tuple> = (0..20).map(|_| tuple![rng.next_range(0, 6)]).collect();
        let d2: Vec<Tuple> = (0..20).map(|_| tuple![rng.next_range(0, 6)]).collect();
        let rels = vec![f, d1, d2];
        let mut j = TraditionalJoin::new(&spec);
        let online = run_online(&mut j, &rels, 1);
        let oracle = naive_join(&spec, &rels);
        assert!(same_multiset(&online, &oracle), "{} vs {}", online.len(), oracle.len());
        assert!(!online.is_empty());
    }

    #[test]
    fn duplicates_and_removal() {
        let spec = chain(2);
        let mut j = TraditionalJoin::new(&spec);
        let mut out = Vec::new();
        j.insert(0, &tuple![0, 7], &mut out);
        j.insert(0, &tuple![0, 7], &mut out);
        j.remove(0, &tuple![0, 7]);
        j.insert(1, &tuple![7, 1], &mut out);
        assert_eq!(out.len(), 1, "one R copy left after removal");
        assert_eq!(j.stored(), 2);
    }

    #[test]
    fn single_relation_identity() {
        let spec = MultiJoinSpec::new(
            vec![RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 0)],
            vec![],
        )
        .unwrap();
        let mut j = TraditionalJoin::new(&spec);
        let mut out = Vec::new();
        j.insert(0, &tuple![3], &mut out);
        assert_eq!(out, vec![tuple![3]]);
    }

    #[test]
    fn no_self_match_on_insert() {
        // An arrival must join only against *previously stored* tuples.
        let spec = chain(2);
        let mut j = TraditionalJoin::new(&spec);
        let mut out = Vec::new();
        j.insert(0, &tuple![5, 5], &mut out);
        assert!(out.is_empty(), "first tuple has nothing to join with");
    }
}
