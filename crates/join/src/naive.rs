//! Reference nested-loop multi-way join — the correctness oracle for every
//! other join in the workspace (tests, property tests, integration tests).

use squall_common::Tuple;
use squall_expr::MultiJoinSpec;

/// Join fully materialized relations by brute force. Output tuples are the
/// concatenation of one tuple per relation (relation order), exactly like
/// the online operators produce.
pub fn naive_join(spec: &MultiJoinSpec, relations: &[Vec<Tuple>]) -> Vec<Tuple> {
    assert_eq!(relations.len(), spec.n_relations());
    let mut out = Vec::new();
    let mut current: Vec<&Tuple> = Vec::with_capacity(relations.len());
    fn recurse<'a>(
        spec: &MultiJoinSpec,
        relations: &'a [Vec<Tuple>],
        current: &mut Vec<&'a Tuple>,
        out: &mut Vec<Tuple>,
    ) {
        let depth = current.len();
        if depth == relations.len() {
            if spec.matches(current) {
                let mut values = Vec::new();
                for t in current.iter() {
                    values.extend_from_slice(t.values());
                }
                out.push(Tuple::new(values));
            }
            return;
        }
        for t in &relations[depth] {
            // Prune early: check atoms fully bound by the prefix.
            let ok = spec.atoms.iter().all(|a| {
                let (hi, lo) = (a.left_rel.max(a.right_rel), a.left_rel.min(a.right_rel));
                if hi != depth || lo > depth {
                    return true;
                }
                let l = if a.left_rel == depth { t } else { current[a.left_rel] }.get(a.left_col);
                let r =
                    if a.right_rel == depth { t } else { current[a.right_rel] }.get(a.right_col);
                a.op.eval(l, r)
            });
            if !ok {
                continue;
            }
            current.push(t);
            recurse(spec, relations, current, out);
            current.pop();
        }
    }
    recurse(spec, relations, &mut current, &mut out);
    out
}

/// Compare two result multisets irrespective of order.
pub fn same_multiset(a: &[Tuple], b: &[Tuple]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a: Vec<&Tuple> = a.iter().collect();
    let mut b: Vec<&Tuple> = b.iter().collect();
    a.sort();
    b.sort();
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, DataType, Schema};
    use squall_expr::{JoinAtom, RelationDef};

    #[test]
    fn two_way_equi() {
        let spec = MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 0),
                RelationDef::new("S", Schema::of(&[("a", DataType::Int)]), 0),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap();
        let r = vec![tuple![1], tuple![2], tuple![2]];
        let s = vec![tuple![2], tuple![3]];
        let out = naive_join(&spec, &[r, s]);
        assert!(same_multiset(&out, &[tuple![2, 2], tuple![2, 2]]));
    }

    #[test]
    fn three_way_chain() {
        let mk = |n: &str| {
            RelationDef::new(n, Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), 0)
        };
        let spec = MultiJoinSpec::new(
            vec![mk("R"), mk("S"), mk("T")],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
        )
        .unwrap();
        let r = vec![tuple![0, 1]];
        let s = vec![tuple![1, 2], tuple![1, 3]];
        let t = vec![tuple![2, 9], tuple![3, 9], tuple![4, 9]];
        let out = naive_join(&spec, &[r, s, t]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn same_multiset_detects_differences() {
        assert!(same_multiset(&[tuple![1], tuple![2]], &[tuple![2], tuple![1]]));
        assert!(!same_multiset(&[tuple![1]], &[tuple![1], tuple![1]]));
        assert!(!same_multiset(&[tuple![1], tuple![1]], &[tuple![1], tuple![2]]));
    }
}
