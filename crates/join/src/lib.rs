//! # squall-join
//!
//! Local (single-machine) online join algorithms and stream operators —
//! §3.3 of the paper.
//!
//! Online local joins process one tuple at a time: "a new incoming tuple
//! for a relation is joined with the stored tuples from the other
//! relation(s), and stored for use by future tuples". Squall ships two
//! families:
//!
//! * [`TraditionalJoin`] — indexes on the *base* relations only (hash
//!   indexes for equi conditions, tree/scan probes for band and inequality
//!   conditions); every arrival recomputes the full (n−1)-way remainder, so
//!   cost explodes with the number of relations;
//! * [`DBToasterJoin`] — the higher-order incremental view maintenance
//!   algorithm of Ahmad et al. \[9\]: every *connected sub-join* is kept
//!   materialized, so an arrival only probes pre-joined views. "The savings
//!   grow with the increase in the number of relations" — the Figure 8
//!   experiments quantify exactly this gap.
//!
//! Both implement [`LocalJoin`], so any partitioning scheme can be paired
//! with either (the separation of concerns behind the HyLD operator,
//! §3.4). The crate also provides the aggregate operators (SUM / COUNT /
//! AVG with GROUP BY, §2), window semantics (tumbling and sliding windows
//! "by adding the window expiration logic on top of the full-history
//! engine", §2) and the BerkeleyDB-replacement [`spill::SpillStore`].

pub mod agg;
pub mod dbtoaster;
pub mod naive;
pub mod snapshot;
pub mod spill;
pub mod traditional;
pub mod views;
pub mod window;

pub use agg::{AggSpec, GroupByAggregator};
pub use dbtoaster::DBToasterJoin;
pub use naive::naive_join;
pub use snapshot::Snapshot;
pub use spill::SpillStore;
pub use traditional::TraditionalJoin;
pub use window::{output_ts_cols, WindowJoin, WindowSpec};

use squall_common::Tuple;

/// A local online multi-way join: tuple in, (possibly several) join results
/// out, state updated.
pub trait LocalJoin: Send {
    /// Insert one tuple of relation `rel`; append every join result this
    /// arrival completes (concatenated in relation order, matching
    /// [`squall_expr::MultiJoinSpec::output_schema`]) to `out`.
    fn insert(&mut self, rel: usize, tuple: &Tuple, out: &mut Vec<Tuple>);

    /// Remove one stored instance of `tuple` from `rel` (window
    /// expiration). No retractions are emitted: results already produced
    /// were valid when their inputs co-existed in the window.
    fn remove(&mut self, rel: usize, tuple: &Tuple);

    /// Stored tuples across all relations/views (memory accounting; drives
    /// the per-machine memory budget of §7.3).
    fn stored(&self) -> usize;

    /// Insert and report results as `(tuple, multiplicity)` pairs instead
    /// of expanding duplicates. Downstream aggregates (the paper's COUNT /
    /// SUM queries) only need the weights, which lets DBToaster's
    /// aggregated views skip materializing hot-key outputs entirely — the
    /// source of its §3.3 advantage. The default expands.
    fn insert_weighted(&mut self, rel: usize, tuple: &Tuple, out: &mut Vec<(Tuple, i64)>) {
        let mut buf = Vec::new();
        self.insert(rel, tuple, &mut buf);
        out.extend(buf.into_iter().map(|t| (t, 1)));
    }
}

impl<J: LocalJoin + ?Sized> LocalJoin for Box<J> {
    fn insert(&mut self, rel: usize, tuple: &Tuple, out: &mut Vec<Tuple>) {
        (**self).insert(rel, tuple, out)
    }

    fn remove(&mut self, rel: usize, tuple: &Tuple) {
        (**self).remove(rel, tuple)
    }

    fn stored(&self) -> usize {
        (**self).stored()
    }

    fn insert_weighted(&mut self, rel: usize, tuple: &Tuple, out: &mut Vec<(Tuple, i64)>) {
        (**self).insert_weighted(rel, tuple, out)
    }
}
