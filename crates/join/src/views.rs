//! Counted materialized views with hash indexes — the storage layer shared
//! by both local join algorithms.
//!
//! A view holds the (multiset) result of joining one subset of the input
//! relations; tuples carry multiplicities so duplicate inputs and window
//! deletions (negative deltas) are exact. Each view keeps one hash index
//! per distinct probe-key column set; probes with no equi columns scan.

use squall_common::{FxHashMap, Tuple, Value};

/// A multiset of tuples with optional hash indexes.
#[derive(Debug, Default)]
pub struct View {
    /// Relations whose concatenation forms this view's rows (sorted).
    pub members: Vec<usize>,
    /// Column offset of each member inside a row.
    pub offsets: Vec<usize>,
    rows: FxHashMap<Tuple, i64>,
    indexes: Vec<ViewIndex>,
    /// Σ multiplicities (stored tuple count).
    count: i64,
}

#[derive(Debug)]
struct ViewIndex {
    cols: Vec<usize>,
    map: FxHashMap<Vec<Value>, FxHashMap<Tuple, i64>>,
}

impl View {
    /// An empty view over the given member relations (with arities taken
    /// from `arities[rel]`).
    pub fn new(members: Vec<usize>, arities: &[usize]) -> View {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members must be sorted");
        let mut offsets = Vec::with_capacity(members.len());
        let mut off = 0;
        for &m in &members {
            offsets.push(off);
            off += arities[m];
        }
        View { members, offsets, rows: FxHashMap::default(), indexes: Vec::new(), count: 0 }
    }

    /// Column offset of member relation `rel` within rows of this view.
    pub fn offset_of(&self, rel: usize) -> usize {
        let i = self.members.iter().position(|&m| m == rel).expect("rel is a member");
        self.offsets[i]
    }

    /// Ensure an index on the given columns exists; returns its id.
    pub fn ensure_index(&mut self, cols: Vec<usize>) -> usize {
        if let Some(i) = self.indexes.iter().position(|ix| ix.cols == cols) {
            return i;
        }
        debug_assert!(self.rows.is_empty(), "indexes are created before data arrives");
        self.indexes.push(ViewIndex { cols, map: FxHashMap::default() });
        self.indexes.len() - 1
    }

    /// Apply a delta: multiplicity `mult` (±) for `tuple`.
    pub fn update(&mut self, tuple: &Tuple, mult: i64) {
        if mult == 0 {
            return;
        }
        self.count += mult;
        let entry = self.rows.entry(tuple.clone()).or_insert(0);
        *entry += mult;
        let gone = *entry <= 0;
        if gone {
            self.rows.remove(tuple);
        }
        for ix in &mut self.indexes {
            let key = tuple.key(&ix.cols);
            let bucket = ix.map.entry(key).or_default();
            let e = bucket.entry(tuple.clone()).or_insert(0);
            *e += mult;
            if *e <= 0 {
                bucket.remove(tuple);
                if bucket.is_empty() {
                    let key = tuple.key(&ix.cols);
                    ix.map.remove(&key);
                }
            }
        }
    }

    /// Probe by index id and key; yields `(tuple, multiplicity)`.
    pub fn probe<'a>(
        &'a self,
        index_id: usize,
        key: &[Value],
    ) -> Box<dyn Iterator<Item = (&'a Tuple, i64)> + 'a> {
        match self.indexes[index_id].map.get(key) {
            Some(bucket) => Box::new(bucket.iter().map(|(t, &m)| (t, m))),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Full scan (used when no equi atoms connect the probing relation).
    pub fn scan(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.rows.iter().map(|(t, &m)| (t, m))
    }

    /// Multiplicity of one tuple.
    pub fn multiplicity(&self, tuple: &Tuple) -> i64 {
        self.rows.get(tuple).copied().unwrap_or(0)
    }

    /// Σ multiplicities.
    pub fn len(&self) -> usize {
        self.count.max(0) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.count <= 0
    }

    /// Distinct stored rows.
    pub fn distinct_rows(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    #[test]
    fn insert_probe_by_index() {
        let mut v = View::new(vec![0], &[2]);
        let ix = v.ensure_index(vec![0]);
        v.update(&tuple![1, 10], 1);
        v.update(&tuple![1, 20], 1);
        v.update(&tuple![2, 30], 1);
        let hits: Vec<_> = v.probe(ix, &[Value::Int(1)]).collect();
        assert_eq!(hits.len(), 2);
        assert!(v.probe(ix, &[Value::Int(9)]).next().is_none());
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn multiplicities_accumulate_and_cancel() {
        let mut v = View::new(vec![0], &[1]);
        let ix = v.ensure_index(vec![0]);
        v.update(&tuple![5], 1);
        v.update(&tuple![5], 1);
        assert_eq!(v.multiplicity(&tuple![5]), 2);
        assert_eq!(v.len(), 2);
        v.update(&tuple![5], -1);
        assert_eq!(v.multiplicity(&tuple![5]), 1);
        let hits: Vec<_> = v.probe(ix, &[Value::Int(5)]).collect();
        assert_eq!(hits, vec![(&tuple![5], 1)]);
        v.update(&tuple![5], -1);
        assert!(v.is_empty());
        assert!(v.probe(ix, &[Value::Int(5)]).next().is_none());
    }

    #[test]
    fn composite_index_keys() {
        let mut v = View::new(vec![1], &[0, 3]);
        let ix = v.ensure_index(vec![0, 2]);
        v.update(&tuple![1, 2, 3], 1);
        v.update(&tuple![1, 9, 3], 1);
        v.update(&tuple![1, 2, 4], 1);
        let hits: Vec<_> = v.probe(ix, &[Value::Int(1), Value::Int(3)]).collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn offsets_for_multi_member_views() {
        let v = View::new(vec![0, 2, 3], &[2, 5, 3, 1]);
        assert_eq!(v.offset_of(0), 0);
        assert_eq!(v.offset_of(2), 2);
        assert_eq!(v.offset_of(3), 5);
    }

    #[test]
    fn scan_lists_everything() {
        let mut v = View::new(vec![0], &[1]);
        v.update(&tuple![1], 2);
        v.update(&tuple![2], 1);
        let total: i64 = v.scan().map(|(_, m)| m).sum();
        assert_eq!(total, 3);
        assert_eq!(v.distinct_rows(), 2);
    }
}
