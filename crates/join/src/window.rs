//! Window semantics on top of the full-history engine (§2).
//!
//! "Squall provides both full-history and window semantics for its
//! operators. It implements typical stream primitives, such as tumbling and
//! sliding windows, by adding the window expiration logic on top of the
//! full-history engine." — [`WindowJoin`] wraps any [`LocalJoin`], buffers
//! `(timestamp, tuple)` pairs per relation, and removes expired state
//! before each insertion. Results are therefore produced exactly for input
//! pairs/triples co-resident in the window.

use std::collections::VecDeque;

use squall_common::Tuple;

use crate::LocalJoin;

/// Window shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Keep everything (incremental view maintenance).
    FullHistory,
    /// Non-overlapping windows of `width` time units: state resets at each
    /// boundary `k·width`.
    Tumbling { width: u64 },
    /// Keep tuples whose timestamp is within `size` of the newest input.
    Sliding { size: u64 },
}

/// A windowed local join: any full-history [`LocalJoin`] plus expiration.
pub struct WindowJoin<J: LocalJoin> {
    inner: J,
    spec: WindowSpec,
    /// Per-relation FIFO of live tuples (timestamps are non-decreasing per
    /// stream, as produced by the runtime's ordered channels).
    live: Vec<VecDeque<(u64, Tuple)>>,
    /// Tumbling only: the current window's index.
    current_window: u64,
}

impl<J: LocalJoin> WindowJoin<J> {
    pub fn new(inner: J, n_relations: usize, spec: WindowSpec) -> WindowJoin<J> {
        WindowJoin {
            inner,
            spec,
            live: (0..n_relations).map(|_| VecDeque::new()).collect(),
            current_window: 0,
        }
    }

    /// Insert a timestamped tuple; expired state is evicted first, so the
    /// emitted results are exactly the in-window joins.
    pub fn insert(&mut self, rel: usize, ts: u64, tuple: &Tuple, out: &mut Vec<Tuple>) {
        self.expire(ts);
        self.live[rel].push_back((ts, tuple.clone()));
        self.inner.insert(rel, tuple, out);
    }

    /// Weighted-result variant (see [`LocalJoin::insert_weighted`]).
    pub fn insert_weighted(
        &mut self,
        rel: usize,
        ts: u64,
        tuple: &Tuple,
        out: &mut Vec<(Tuple, i64)>,
    ) {
        self.expire(ts);
        self.live[rel].push_back((ts, tuple.clone()));
        self.inner.insert_weighted(rel, tuple, out);
    }

    fn expire(&mut self, now: u64) {
        match self.spec {
            WindowSpec::FullHistory => {}
            WindowSpec::Sliding { size } => {
                let cutoff = now.saturating_sub(size);
                for rel in 0..self.live.len() {
                    while let Some((ts, _)) = self.live[rel].front() {
                        if *ts < cutoff {
                            let (_, t) = self.live[rel].pop_front().expect("front exists");
                            self.inner.remove(rel, &t);
                        } else {
                            break;
                        }
                    }
                }
            }
            WindowSpec::Tumbling { width } => {
                let win = now / width;
                if win != self.current_window {
                    // Window boundary: drop all state.
                    for rel in 0..self.live.len() {
                        while let Some((_, t)) = self.live[rel].pop_front() {
                            self.inner.remove(rel, &t);
                        }
                    }
                    self.current_window = win;
                }
            }
        }
    }

    /// Tuples currently held in the window (all relations).
    pub fn live_tuples(&self) -> usize {
        self.live.iter().map(|q| q.len()).sum()
    }

    pub fn inner(&self) -> &J {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbtoaster::DBToasterJoin;
    use crate::traditional::TraditionalJoin;
    use squall_common::{tuple, DataType, Schema};
    use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};

    fn two_way() -> MultiJoinSpec {
        MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 0),
                RelationDef::new("S", Schema::of(&[("a", DataType::Int)]), 0),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap()
    }

    #[test]
    fn full_history_never_expires() {
        let spec = two_way();
        let mut w = WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::FullHistory);
        let mut out = Vec::new();
        w.insert(0, 0, &tuple![1], &mut out);
        w.insert(1, 1_000_000, &tuple![1], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sliding_window_expires_old_state() {
        let spec = two_way();
        let mut w = WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::Sliding { size: 10 });
        let mut out = Vec::new();
        w.insert(0, 0, &tuple![1], &mut out);
        // Within the window: matches.
        w.insert(1, 5, &tuple![1], &mut out);
        assert_eq!(out.len(), 1);
        // Far in the future: the R tuple (ts 0) has expired.
        out.clear();
        w.insert(1, 100, &tuple![1], &mut out);
        assert!(out.is_empty(), "expired tuple must not join");
        // But the ts=5 S tuple expired too; new R at 101 only sees S@100.
        out.clear();
        w.insert(0, 101, &tuple![1], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sliding_window_matches_filter_oracle() {
        // Oracle: (r, s) joins iff |ts_r − ts_s| ≤ size and keys match —
        // checked over an interleaved stream.
        let spec = two_way();
        let size = 8u64;
        let mut w = WindowJoin::new(TraditionalJoin::new(&spec), 2, WindowSpec::Sliding { size });
        let mut rng = squall_common::SplitMix64::new(14);
        let mut events: Vec<(usize, u64, Tuple)> = Vec::new();
        let mut ts = 0u64;
        for _ in 0..200 {
            ts += rng.next_below(4) as u64;
            events.push((rng.next_below(2), ts, tuple![rng.next_range(0, 5)]));
        }
        let mut online = Vec::new();
        for (rel, ts, t) in &events {
            w.insert(*rel, *ts, t, &mut online);
        }
        // The oracle counts unordered matching pairs within the window.
        // (The eager eviction at insert time uses a strict cutoff; mirror
        // it exactly.)
        let mut expected = 0usize;
        for (i, (rel_a, ts_a, a)) in events.iter().enumerate() {
            for (rel_b, ts_b, b) in events.iter().take(i) {
                if rel_a != rel_b && a == b && ts_a.saturating_sub(size) <= *ts_b {
                    expected += 1;
                }
            }
        }
        assert_eq!(online.len(), expected);
    }

    #[test]
    fn tumbling_window_resets_state() {
        let spec = two_way();
        let mut w =
            WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::Tumbling { width: 10 });
        let mut out = Vec::new();
        w.insert(0, 1, &tuple![1], &mut out);
        w.insert(1, 5, &tuple![1], &mut out);
        assert_eq!(out.len(), 1, "same window joins");
        out.clear();
        // ts 12 is in the next window: state was reset.
        w.insert(1, 12, &tuple![1], &mut out);
        assert!(out.is_empty());
        assert_eq!(w.live_tuples(), 1);
        // Same (new) window still joins.
        w.insert(0, 13, &tuple![1], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn window_keeps_inner_state_bounded() {
        let spec = two_way();
        let mut w = WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::Sliding { size: 5 });
        let mut out = Vec::new();
        for ts in 0..1000u64 {
            w.insert((ts % 2) as usize, ts, &tuple![(ts % 7) as i64], &mut out);
        }
        assert!(w.live_tuples() <= 8, "live {} should be ≈ window size", w.live_tuples());
        assert!(w.inner().stored() <= 16, "inner state must stay bounded");
    }
}
