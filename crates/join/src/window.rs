//! Window semantics on top of the full-history engine (§2).
//!
//! "Squall provides both full-history and window semantics for its
//! operators. It implements typical stream primitives, such as tumbling and
//! sliding windows, by adding the window expiration logic on top of the
//! full-history engine." — [`WindowJoin`] wraps any [`LocalJoin`], buffers
//! `(timestamp, tuple)` pairs per relation, and removes expired state.
//!
//! Two modes:
//!
//! * **Arrival-order** ([`WindowJoin::new`]) — the classic "expire before
//!   insert" construction. Correct when insertions carry globally
//!   non-decreasing timestamps (a single merged in-order stream); results
//!   are exactly the input combinations co-resident in the window.
//! * **Event-time** ([`WindowJoin::event_time`]) — the mode the distributed
//!   planner uses. Each relation's tuples *carry* their timestamp as a
//!   column, per-relation arrival is timestamp-ordered, but relations may
//!   interleave arbitrarily (independent spouts). Eviction is driven by the
//!   *watermark* (the minimum of the per-relation timestamp frontiers), so
//!   a tuple is only dropped once no future arrival can fall in its window,
//!   and each emitted result is filtered by the window predicate over its
//!   constituent timestamps. The produced result set is therefore a pure
//!   function of the timestamped inputs — deterministic under any
//!   cross-relation interleaving:
//!   * sliding `size`: `max(ts) − min(ts) ≤ size`;
//!   * tumbling `width`: all constituents in the same bucket `⌊ts/width⌋`
//!     (so a tuple with timestamp exactly `k·width` opens window `k` and
//!     never joins window `k−1` state).

use std::collections::VecDeque;

use squall_common::codec::{self, Reader};
use squall_common::{Result, Tuple};

use crate::{LocalJoin, Snapshot};

/// Window shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Keep everything (incremental view maintenance).
    FullHistory,
    /// Non-overlapping windows of `width` time units: tuples join only
    /// within the same bucket `⌊ts/width⌋`.
    Tumbling { width: u64 },
    /// Keep tuples whose timestamp is within `size` of the newest input.
    Sliding { size: u64 },
}

/// Positions of each relation's event-time column within a join *output*
/// row. Results concatenate relations in order, so relation `rel`'s
/// timestamp lands at `arities[..rel].sum() + ts_cols[rel]`. Shared by
/// the event-time [`WindowJoin`] (window predicate over emitted results)
/// and the per-window aggregation bolt downstream of it — one mapping,
/// so the two can never drift.
pub fn output_ts_cols(arities: &[usize], ts_cols: &[usize]) -> Vec<usize> {
    assert_eq!(arities.len(), ts_cols.len(), "one ts column per relation");
    let mut out = Vec::with_capacity(arities.len());
    let mut off = 0;
    for (a, &c) in arities.iter().zip(ts_cols) {
        assert!(c < *a, "ts column {c} out of range for arity {a}");
        out.push(off + c);
        off += a;
    }
    out
}

/// A windowed local join: any full-history [`LocalJoin`] plus expiration.
pub struct WindowJoin<J: LocalJoin> {
    inner: J,
    spec: WindowSpec,
    /// Per-relation FIFO of live tuples (timestamps are non-decreasing per
    /// relation, as produced by event-time-ordered spouts and the
    /// runtime's ordered channels).
    live: Vec<VecDeque<(u64, Tuple)>>,
    /// Arrival-order tumbling only: the current window's index.
    current_window: u64,
    /// Event-time mode: the timestamp position of each relation in the
    /// join *output* tuple (results are concatenated in relation order).
    out_ts_cols: Option<Vec<usize>>,
    /// Event-time mode: newest timestamp seen per relation.
    frontier: Vec<Option<u64>>,
    scratch: Vec<Tuple>,
    wscratch: Vec<(Tuple, i64)>,
}

impl<J: LocalJoin> WindowJoin<J> {
    /// Arrival-order mode: correct when `insert` timestamps are globally
    /// non-decreasing across all relations.
    pub fn new(inner: J, n_relations: usize, spec: WindowSpec) -> WindowJoin<J> {
        WindowJoin {
            inner,
            spec,
            live: (0..n_relations).map(|_| VecDeque::new()).collect(),
            current_window: 0,
            out_ts_cols: None,
            frontier: Vec::new(),
            scratch: Vec::new(),
            wscratch: Vec::new(),
        }
    }

    /// Event-time mode: deterministic window semantics for independently
    /// interleaving relations. `arities[rel]` is each relation's tuple
    /// width and `ts_cols[rel]` the timestamp column *within* that
    /// relation; both the inserted tuples and the emitted results must
    /// carry Int, non-negative timestamps there (the planner validates
    /// this before execution).
    pub fn event_time(
        inner: J,
        spec: WindowSpec,
        arities: &[usize],
        ts_cols: &[usize],
    ) -> WindowJoin<J> {
        let out_ts = output_ts_cols(arities, ts_cols);
        WindowJoin {
            inner,
            spec,
            live: (0..arities.len()).map(|_| VecDeque::new()).collect(),
            current_window: 0,
            out_ts_cols: Some(out_ts),
            frontier: vec![None; arities.len()],
            scratch: Vec::new(),
            wscratch: Vec::new(),
        }
    }

    /// Is this join running under event-time (watermark) semantics?
    pub fn is_event_time(&self) -> bool {
        self.out_ts_cols.is_some()
    }

    /// Insert a timestamped tuple; expired state is evicted first and, in
    /// event-time mode, emitted results are filtered by the window
    /// predicate — so `out` receives exactly the in-window joins.
    /// Arrival-order tumbling drops a straggler from an already-closed
    /// window (it neither joins nor is stored).
    pub fn insert(&mut self, rel: usize, ts: u64, tuple: &Tuple, out: &mut Vec<Tuple>) {
        if !self.expire(rel, ts) {
            return;
        }
        self.live[rel].push_back((ts, tuple.clone()));
        match &self.out_ts_cols {
            None => self.inner.insert(rel, tuple, out),
            Some(cols) => {
                let mut buf = std::mem::take(&mut self.scratch);
                buf.clear();
                self.inner.insert(rel, tuple, &mut buf);
                out.extend(buf.drain(..).filter(|t| in_window(self.spec, cols, t)));
                self.scratch = buf;
            }
        }
    }

    /// Weighted-result variant (see [`LocalJoin::insert_weighted`]).
    pub fn insert_weighted(
        &mut self,
        rel: usize,
        ts: u64,
        tuple: &Tuple,
        out: &mut Vec<(Tuple, i64)>,
    ) {
        if !self.expire(rel, ts) {
            return;
        }
        self.live[rel].push_back((ts, tuple.clone()));
        match &self.out_ts_cols {
            None => self.inner.insert_weighted(rel, tuple, out),
            Some(cols) => {
                let mut buf = std::mem::take(&mut self.wscratch);
                buf.clear();
                self.inner.insert_weighted(rel, tuple, &mut buf);
                out.extend(buf.drain(..).filter(|(t, _)| in_window(self.spec, cols, t)));
                self.wscratch = buf;
            }
        }
    }

    /// Evict expired state for an arrival at `now`; returns whether the
    /// arriving tuple should be processed at all (false only for
    /// arrival-order tumbling stragglers from an already-closed window).
    fn expire(&mut self, rel: usize, now: u64) -> bool {
        if matches!(self.spec, WindowSpec::FullHistory) {
            return true;
        }
        if self.out_ts_cols.is_some() {
            // Event-time: advance this relation's frontier and evict by
            // the watermark — only tuples no *future* arrival (which must
            // carry ts ≥ watermark) can co-window with.
            self.frontier[rel] = Some(self.frontier[rel].map_or(now, |f| f.max(now)));
            let Some(watermark) =
                self.frontier.iter().copied().try_fold(u64::MAX, |m, f| f.map(|f| m.min(f)))
            else {
                return true; // some relation unseen: no safe eviction yet
            };
            let expired = |ts: u64| match self.spec {
                WindowSpec::Sliding { size } => ts < watermark.saturating_sub(size),
                WindowSpec::Tumbling { width } => ts / width < watermark / width,
                WindowSpec::FullHistory => false,
            };
            for r in 0..self.live.len() {
                while let Some(&(ts, _)) = self.live[r].front() {
                    if expired(ts) {
                        let (_, t) = self.live[r].pop_front().expect("front exists");
                        self.inner.remove(r, &t);
                    } else {
                        break;
                    }
                }
            }
            return true;
        }
        // Arrival-order mode: `now` is the newest global timestamp.
        match self.spec {
            WindowSpec::FullHistory => {}
            WindowSpec::Sliding { size } => {
                let cutoff = now.saturating_sub(size);
                for r in 0..self.live.len() {
                    while let Some((ts, _)) = self.live[r].front() {
                        if *ts < cutoff {
                            let (_, t) = self.live[r].pop_front().expect("front exists");
                            self.inner.remove(r, &t);
                        } else {
                            break;
                        }
                    }
                }
            }
            WindowSpec::Tumbling { width } => {
                let win = now / width;
                // A straggler from an already-closed window must neither
                // wipe the current state nor join across the boundary:
                // its window is gone, so the tuple is dropped.
                if win < self.current_window {
                    return false;
                }
                if win > self.current_window {
                    for r in 0..self.live.len() {
                        while let Some((_, t)) = self.live[r].pop_front() {
                            self.inner.remove(r, &t);
                        }
                    }
                    self.current_window = win;
                }
            }
        }
        true
    }

    /// The event-time watermark: the minimum of the per-relation timestamp
    /// frontiers, i.e. the largest `w` such that every future arrival is
    /// guaranteed to carry a timestamp ≥ `w`. `None` until every relation
    /// has been seen (no promise can be made yet) or in arrival-order /
    /// full-history mode, which tracks no frontiers.
    pub fn watermark(&self) -> Option<u64> {
        self.out_ts_cols.as_ref()?;
        self.frontier.iter().copied().try_fold(u64::MAX, |m, f| f.map(|f| m.min(f)))
    }

    /// Tuples currently held in the window (all relations).
    pub fn live_tuples(&self) -> usize {
        self.live.iter().map(|q| q.len()).sum()
    }

    pub fn inner(&self) -> &J {
        &self.inner
    }
}

impl<J: LocalJoin> Snapshot for WindowJoin<J> {
    /// Live window buffers plus frontiers only: the wrapped join's state
    /// is exactly the joins of the live tuples, so restore re-inserts them
    /// (discarding output) instead of shipping inner views. Per-relation
    /// buffers are already deterministic — they hold arrival order, which
    /// the runtime's ordered channels make identical across runs of the
    /// same input prefix.
    fn snapshot_state(&self, buf: &mut Vec<u8>) {
        codec::put_u64(buf, self.current_window);
        codec::put_u32(buf, self.live.len() as u32);
        for q in &self.live {
            codec::put_u32(buf, q.len() as u32);
            for (ts, t) in q {
                codec::put_u64(buf, *ts);
                codec::put_tuple(buf, t);
            }
        }
        codec::put_u32(buf, self.frontier.len() as u32);
        for f in &self.frontier {
            match f {
                None => codec::put_u8(buf, 0),
                Some(ts) => {
                    codec::put_u8(buf, 1);
                    codec::put_u64(buf, *ts);
                }
            }
        }
    }

    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<()> {
        self.current_window = r.u64()?;
        let n_rel = r.len()?;
        let mut discard = Vec::new();
        for rel in 0..n_rel {
            let n = r.len()?;
            for _ in 0..n {
                let ts = r.u64()?;
                let t = codec::get_tuple(r)?;
                // Straight into the inner join — no expiry pass: every
                // serialized tuple was live at the snapshot watermark, so
                // none can be expired at restore either.
                self.inner.insert_weighted(rel, &t, &mut discard);
                discard.clear();
                self.live[rel].push_back((ts, t));
            }
        }
        let n_front = r.len()?;
        self.frontier.clear();
        for _ in 0..n_front {
            self.frontier.push(match r.u8()? {
                0 => None,
                _ => Some(r.u64()?),
            });
        }
        Ok(())
    }
}

/// The window predicate over a result tuple's constituent timestamps.
fn in_window(spec: WindowSpec, out_ts_cols: &[usize], result: &Tuple) -> bool {
    let ts = |c: usize| -> u64 {
        result.get(c).as_int().expect("window timestamp column must be Int (validated at plan)")
            as u64
    };
    match spec {
        WindowSpec::FullHistory => true,
        WindowSpec::Sliding { size } => {
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for &c in out_ts_cols {
                let v = ts(c);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            hi - lo <= size
        }
        WindowSpec::Tumbling { width } => {
            let first = ts(out_ts_cols[0]) / width;
            out_ts_cols[1..].iter().all(|&c| ts(c) / width == first)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbtoaster::DBToasterJoin;
    use crate::traditional::TraditionalJoin;
    use squall_common::{tuple, DataType, Schema};
    use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};

    fn two_way() -> MultiJoinSpec {
        MultiJoinSpec::new(
            vec![
                RelationDef::new("R", Schema::of(&[("a", DataType::Int)]), 0),
                RelationDef::new("S", Schema::of(&[("a", DataType::Int)]), 0),
            ],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap()
    }

    /// Two-way spec where each side is (key, ts) — for event-time tests.
    fn two_way_ts() -> MultiJoinSpec {
        let s = Schema::of(&[("a", DataType::Int), ("ts", DataType::Int)]);
        MultiJoinSpec::new(
            vec![RelationDef::new("R", s.clone(), 0), RelationDef::new("S", s, 0)],
            vec![JoinAtom::eq(0, 0, 1, 0)],
        )
        .unwrap()
    }

    #[test]
    fn full_history_never_expires() {
        let spec = two_way();
        let mut w = WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::FullHistory);
        let mut out = Vec::new();
        w.insert(0, 0, &tuple![1], &mut out);
        w.insert(1, 1_000_000, &tuple![1], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sliding_window_expires_old_state() {
        let spec = two_way();
        let mut w = WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::Sliding { size: 10 });
        let mut out = Vec::new();
        w.insert(0, 0, &tuple![1], &mut out);
        // Within the window: matches.
        w.insert(1, 5, &tuple![1], &mut out);
        assert_eq!(out.len(), 1);
        // Far in the future: the R tuple (ts 0) has expired.
        out.clear();
        w.insert(1, 100, &tuple![1], &mut out);
        assert!(out.is_empty(), "expired tuple must not join");
        // But the ts=5 S tuple expired too; new R at 101 only sees S@100.
        out.clear();
        w.insert(0, 101, &tuple![1], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn sliding_window_matches_filter_oracle() {
        // Oracle: (r, s) joins iff |ts_r − ts_s| ≤ size and keys match —
        // checked over an interleaved stream.
        let spec = two_way();
        let size = 8u64;
        let mut w = WindowJoin::new(TraditionalJoin::new(&spec), 2, WindowSpec::Sliding { size });
        let mut rng = squall_common::SplitMix64::new(14);
        let mut events: Vec<(usize, u64, Tuple)> = Vec::new();
        let mut ts = 0u64;
        for _ in 0..200 {
            ts += rng.next_below(4) as u64;
            events.push((rng.next_below(2), ts, tuple![rng.next_range(0, 5)]));
        }
        let mut online = Vec::new();
        for (rel, ts, t) in &events {
            w.insert(*rel, *ts, t, &mut online);
        }
        // The oracle counts unordered matching pairs within the window.
        // (The eager eviction at insert time uses a strict cutoff; mirror
        // it exactly.)
        let mut expected = 0usize;
        for (i, (rel_a, ts_a, a)) in events.iter().enumerate() {
            for (rel_b, ts_b, b) in events.iter().take(i) {
                if rel_a != rel_b && a == b && ts_a.saturating_sub(size) <= *ts_b {
                    expected += 1;
                }
            }
        }
        assert_eq!(online.len(), expected);
    }

    #[test]
    fn tumbling_window_resets_state() {
        let spec = two_way();
        let mut w =
            WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::Tumbling { width: 10 });
        let mut out = Vec::new();
        w.insert(0, 1, &tuple![1], &mut out);
        w.insert(1, 5, &tuple![1], &mut out);
        assert_eq!(out.len(), 1, "same window joins");
        out.clear();
        // ts 12 is in the next window: state was reset.
        w.insert(1, 12, &tuple![1], &mut out);
        assert!(out.is_empty());
        assert_eq!(w.live_tuples(), 1);
        // Same (new) window still joins.
        w.insert(0, 13, &tuple![1], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn tumbling_boundary_opens_new_window() {
        // A tuple with timestamp exactly k·width belongs to window k and
        // must NOT join window k−1 state.
        let spec = two_way();
        let mut w =
            WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::Tumbling { width: 10 });
        let mut out = Vec::new();
        w.insert(0, 9, &tuple![1], &mut out); // window 0
        w.insert(1, 10, &tuple![1], &mut out); // exactly 1·width → window 1
        assert!(out.is_empty(), "boundary tuple joined stale window state");
        assert_eq!(w.live_tuples(), 1, "window-0 state evicted at the boundary");
        // A second window-1 tuple does join.
        w.insert(0, 10, &tuple![1], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn tumbling_straggler_is_dropped_not_joined() {
        let spec = two_way();
        let mut w =
            WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::Tumbling { width: 10 });
        let mut out = Vec::new();
        w.insert(0, 21, &tuple![1], &mut out); // window 2
        w.insert(1, 19, &tuple![1], &mut out); // straggler from closed window 1
        assert!(out.is_empty(), "straggler joined across the window boundary");
        assert_eq!(w.live_tuples(), 1, "straggler must not be stored");
        // Window-2 state must have survived the straggler.
        w.insert(1, 22, &tuple![1], &mut out);
        assert_eq!(out.len(), 1, "straggler wiped the current window");
    }

    #[test]
    fn event_time_sliding_filters_out_of_window_results() {
        let spec = two_way_ts();
        let mut w = WindowJoin::event_time(
            DBToasterJoin::new(&spec),
            WindowSpec::Sliding { size: 30 },
            &[2, 2],
            &[1, 1],
        );
        let mut out = Vec::new();
        // R runs far ahead of S (cross-relation skew).
        w.insert(0, 100, &tuple![1, 100], &mut out);
        // S@50: R@100 is still live (watermark 50) but |100−50| > 30.
        w.insert(1, 50, &tuple![1, 50], &mut out);
        assert!(out.is_empty(), "out-of-window pair leaked through");
        // S@80 pairs with R@100: |100−80| ≤ 30.
        w.insert(1, 80, &tuple![1, 80], &mut out);
        assert_eq!(out, vec![tuple![1, 100, 1, 80]]);
    }

    #[test]
    fn event_time_watermark_keeps_late_partners_alive() {
        // Under the old eager eviction, R@100 arriving first would evict
        // R@60; the watermark must keep it for the late S@55.
        let spec = two_way_ts();
        let mut w = WindowJoin::event_time(
            TraditionalJoin::new(&spec),
            WindowSpec::Sliding { size: 30 },
            &[2, 2],
            &[1, 1],
        );
        let mut out = Vec::new();
        w.insert(0, 60, &tuple![7, 60], &mut out);
        w.insert(0, 100, &tuple![7, 100], &mut out);
        w.insert(1, 55, &tuple![7, 55], &mut out);
        assert_eq!(out, vec![tuple![7, 60, 7, 55]], "in-window pair was lost to eager eviction");
    }

    #[test]
    fn event_time_tumbling_boundary() {
        let spec = two_way_ts();
        let mut w = WindowJoin::event_time(
            DBToasterJoin::new(&spec),
            WindowSpec::Tumbling { width: 10 },
            &[2, 2],
            &[1, 1],
        );
        let mut out = Vec::new();
        w.insert(0, 9, &tuple![1, 9], &mut out); // window 0
        w.insert(1, 10, &tuple![1, 10], &mut out); // window 1: no join
        assert!(out.is_empty());
        w.insert(0, 10, &tuple![1, 10], &mut out); // window 1: joins S@10
        assert_eq!(out, vec![tuple![1, 10, 1, 10]]);
    }

    #[test]
    fn event_time_results_are_interleaving_invariant() {
        // The same timestamped inputs under two different cross-relation
        // interleavings (per-relation order preserved) produce the same
        // result multiset.
        let spec = two_way_ts();
        let size = 12u64;
        let mut rng = squall_common::SplitMix64::new(3);
        let mut rels: Vec<Vec<(u64, Tuple)>> = vec![Vec::new(), Vec::new()];
        for rel in rels.iter_mut() {
            let mut ts = 0u64;
            for _ in 0..60 {
                ts += rng.next_below(5) as u64;
                rel.push((ts, tuple![rng.next_range(0, 4), ts as i64]));
            }
        }
        let run = |order: &[usize]| -> Vec<Tuple> {
            let mut w = WindowJoin::event_time(
                TraditionalJoin::new(&spec),
                WindowSpec::Sliding { size },
                &[2, 2],
                &[1, 1],
            );
            let mut pos = [0usize; 2];
            let mut out = Vec::new();
            for &rel in order {
                let (ts, t) = &rels[rel][pos[rel]];
                pos[rel] += 1;
                w.insert(rel, *ts, t, &mut out);
            }
            out.sort();
            out
        };
        // Interleaving A: strict alternation. B: R in two big bursts.
        let alternating: Vec<usize> = (0..120).map(|i| i % 2).collect();
        let mut bursty: Vec<usize> = vec![0; 40];
        bursty.extend(vec![1; 60]);
        bursty.extend(vec![0; 20]);
        let a = run(&alternating);
        let b = run(&bursty);
        assert_eq!(a, b, "window results depended on cross-relation interleaving");
        // And they match the pure timestamp oracle.
        let mut oracle = Vec::new();
        for (tr, r) in &rels[0] {
            for (ts, s) in &rels[1] {
                if r.get(0) == s.get(0) && tr.abs_diff(*ts) <= size {
                    let mut v = r.values().to_vec();
                    v.extend_from_slice(s.values());
                    oracle.push(Tuple::new(v));
                }
            }
        }
        oracle.sort();
        assert_eq!(a, oracle);
    }

    #[test]
    fn event_time_state_stays_bounded() {
        let spec = two_way_ts();
        let mut w = WindowJoin::event_time(
            DBToasterJoin::new(&spec),
            WindowSpec::Sliding { size: 5 },
            &[2, 2],
            &[1, 1],
        );
        let mut out = Vec::new();
        for ts in 0..1000u64 {
            let rel = (ts % 2) as usize;
            w.insert(rel, ts, &tuple![(ts % 7) as i64, ts as i64], &mut out);
        }
        assert!(w.live_tuples() <= 10, "live {} should be ≈ window size", w.live_tuples());
        assert!(w.inner().stored() <= 20, "inner state must stay bounded");
    }

    #[test]
    fn window_keeps_inner_state_bounded() {
        let spec = two_way();
        let mut w = WindowJoin::new(DBToasterJoin::new(&spec), 2, WindowSpec::Sliding { size: 5 });
        let mut out = Vec::new();
        for ts in 0..1000u64 {
            w.insert((ts % 2) as usize, ts, &tuple![(ts % 7) as i64], &mut out);
        }
        assert!(w.live_tuples() <= 8, "live {} should be ≈ window size", w.live_tuples());
        assert!(w.inner().stored() <= 16, "inner state must stay bounded");
    }
}
