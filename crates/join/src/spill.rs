//! Disk spilling — the BerkeleyDB-connector replacement (§2: "Squall is a
//! main-memory system. It also offers connectivity to BerkeleyDB, which
//! spills tuples to disk when main memory is insufficient. However,
//! throughput and latency are orders of magnitude better when only
//! main-memory is used.")
//!
//! [`SpillStore`] keeps tuples in memory up to a byte budget, then appends
//! overflow to a temporary file with a simple length-prefixed binary codec.
//! Scans replay memory first, then the file.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use squall_common::{Date, Result, SquallError, Tuple, Value};

/// Append-only tuple store with a memory budget and disk overflow.
pub struct SpillStore {
    mem: Vec<Tuple>,
    mem_bytes: usize,
    budget_bytes: usize,
    spilled: usize,
    writer: Option<BufWriter<File>>,
    path: Option<PathBuf>,
}

impl SpillStore {
    /// A store that spills to a fresh temp file once memory exceeds
    /// `budget_bytes`.
    pub fn new(budget_bytes: usize) -> SpillStore {
        SpillStore {
            mem: Vec::new(),
            mem_bytes: 0,
            budget_bytes,
            spilled: 0,
            writer: None,
            path: None,
        }
    }

    /// Append one tuple.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if self.mem_bytes + tuple.approx_bytes() <= self.budget_bytes
            || self.budget_bytes == 0 && self.mem.is_empty()
        {
            self.mem_bytes += tuple.approx_bytes();
            self.mem.push(tuple);
            return Ok(());
        }
        if self.writer.is_none() {
            let dir = std::env::temp_dir();
            let path = dir.join(format!(
                "squall-spill-{}-{:x}.bin",
                std::process::id(),
                self as *const _ as usize
            ));
            let file = File::create(&path)?;
            self.path = Some(path);
            self.writer = Some(BufWriter::new(file));
        }
        let w = self.writer.as_mut().expect("writer created above");
        encode_tuple(w, &tuple)?;
        self.spilled += 1;
        Ok(())
    }

    /// Total stored tuples.
    pub fn len(&self) -> usize {
        self.mem.len() + self.spilled
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tuples currently held in memory / spilled to disk.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }

    pub fn spilled_len(&self) -> usize {
        self.spilled
    }

    /// Scan everything: memory first, then the spill file. (The
    /// orders-of-magnitude slowdown the paper mentions shows up here as
    /// real file I/O.)
    pub fn scan(&mut self) -> Result<Vec<Tuple>> {
        let mut out = self.mem.clone();
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
            let path = self.path.as_ref().expect("path set with writer");
            let mut reader = BufReader::new(File::open(path)?);
            for _ in 0..self.spilled {
                out.push(decode_tuple(&mut reader)?);
            }
        }
        Ok(out)
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        if let Some(p) = &self.path {
            let _ = std::fs::remove_file(p);
        }
    }
}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;

fn encode_tuple(w: &mut impl Write, t: &Tuple) -> Result<()> {
    w.write_all(&(t.arity() as u32).to_le_bytes())?;
    for v in t.values() {
        match v {
            Value::Null => w.write_all(&[TAG_NULL])?,
            Value::Int(i) => {
                w.write_all(&[TAG_INT])?;
                w.write_all(&i.to_le_bytes())?;
            }
            Value::Float(f) => {
                w.write_all(&[TAG_FLOAT])?;
                w.write_all(&f.to_bits().to_le_bytes())?;
            }
            Value::Str(s) => {
                w.write_all(&[TAG_STR])?;
                w.write_all(&(s.len() as u32).to_le_bytes())?;
                w.write_all(s.as_bytes())?;
            }
            Value::Date(d) => {
                w.write_all(&[TAG_DATE])?;
                w.write_all(&d.0.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

fn decode_tuple(r: &mut impl Read) -> Result<Tuple> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let arity = u32::from_le_bytes(len4) as usize;
    if arity > 1 << 20 {
        return Err(SquallError::Io("corrupt spill file: absurd arity".into()));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let v = match tag[0] {
            TAG_NULL => Value::Null,
            TAG_INT => {
                let mut b = [0u8; 8];
                r.read_exact(&mut b)?;
                Value::Int(i64::from_le_bytes(b))
            }
            TAG_FLOAT => {
                let mut b = [0u8; 8];
                r.read_exact(&mut b)?;
                Value::Float(f64::from_bits(u64::from_le_bytes(b)))
            }
            TAG_STR => {
                let mut b = [0u8; 4];
                r.read_exact(&mut b)?;
                let n = u32::from_le_bytes(b) as usize;
                let mut buf = vec![0u8; n];
                r.read_exact(&mut buf)?;
                Value::Str(
                    String::from_utf8(buf)
                        .map_err(|_| SquallError::Io("corrupt spill file: bad utf8".into()))?
                        .into(),
                )
            }
            TAG_DATE => {
                let mut b = [0u8; 4];
                r.read_exact(&mut b)?;
                Value::Date(Date(i32::from_le_bytes(b)))
            }
            other => return Err(SquallError::Io(format!("corrupt spill file: tag {other}"))),
        };
        values.push(v);
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::tuple;

    #[test]
    fn all_in_memory_under_budget() {
        let mut s = SpillStore::new(1 << 20);
        for i in 0..100i64 {
            s.push(tuple![i, "x"]).unwrap();
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.spilled_len(), 0);
        let all = s.scan().unwrap();
        assert_eq!(all.len(), 100);
        assert_eq!(all[7], tuple![7, "x"]);
    }

    #[test]
    fn overflow_spills_and_scans_back() {
        let mut s = SpillStore::new(600);
        for i in 0..1000i64 {
            s.push(tuple![i, i * 2, format!("payload-{i}")]).unwrap();
        }
        assert_eq!(s.len(), 1000);
        assert!(s.spilled_len() > 900, "most tuples should be on disk");
        assert!(s.mem_len() < 100);
        let all = s.scan().unwrap();
        assert_eq!(all.len(), 1000);
        // Order: memory first, then disk, both append-ordered.
        let mem = s.mem_len() as i64;
        assert_eq!(all[0], tuple![0, 0, "payload-0"]);
        assert_eq!(all[mem as usize], tuple![mem, mem * 2, format!("payload-{mem}")]);
        assert_eq!(all[999], tuple![999, 1998, "payload-999"]);
    }

    #[test]
    fn roundtrips_every_value_type() {
        let mut s = SpillStore::new(0); // everything after the first goes to disk
        let t1 = tuple![42, 2.5, "héllo", Value::Null];
        let mut t2v = t1.values().to_vec();
        t2v.push(Value::Date(Date::parse("1994-06-30").unwrap()));
        let t2 = Tuple::new(t2v);
        s.push(t1.clone()).unwrap();
        s.push(t2.clone()).unwrap();
        let all = s.scan().unwrap();
        assert_eq!(all, vec![t1, t2]);
    }

    #[test]
    fn scan_is_repeatable() {
        let mut s = SpillStore::new(100);
        for i in 0..50i64 {
            s.push(tuple![i]).unwrap();
        }
        let a = s.scan().unwrap();
        let b = s.scan().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn spill_file_removed_on_drop() {
        let path;
        {
            let mut s = SpillStore::new(0);
            s.push(tuple![1]).unwrap();
            s.push(tuple![2]).unwrap();
            s.scan().unwrap();
            path = s.path.clone().expect("spilled");
            assert!(path.exists());
        }
        assert!(!path.exists(), "temp file must be cleaned up");
    }
}
