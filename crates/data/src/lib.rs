//! # squall-data
//!
//! Synthetic workload generators standing in for the paper's datasets
//! (§6, §7.1), all seeded and deterministic:
//!
//! * [`tpch`] — a scaled-down TPC-H subset (CUSTOMER, ORDERS, LINEITEM,
//!   PARTSUPP, PART) with TPC-H's relative cardinalities and an optional
//!   zipf(θ) skew on PARTKEY ("TPC-H dataset with zipfian distribution and
//!   skew factor of 2", §7.3). Dates are generated as `YYYY-MM-DD` strings
//!   so the Figure 5 `sel(date)` parsing cost is real.
//! * [`webgraph`] — a power-law hyperlink graph with one dominant hub
//!   (the 'blogspot.com' stand-in), replacing the Common Crawl WebGraph.
//! * [`crawlcontent`] — `{Url, Score}` with synthesized scores (the paper
//!   itself synthesizes Score).
//! * [`google_cluster`] — JOB_EVENTS / TASK_EVENTS / MACHINE_EVENTS with
//!   FAIL events, preserving the trace's relative sizes ("the total size
//!   of Machine_Events and Job_Events is only 14.5% of Task_Events").
//! * [`streams`] — ordered/shuffled/drifting streams for the §5 ablations.
//! * [`queries`] — the paper's evaluation queries as [`MultiJoinSpec`]s
//!   (3-Reachability, TPCH9-Partial, TPC-H Q3, WebAnalytics, Google
//!   TaskCount).

pub mod crawlcontent;
pub mod google_cluster;
pub mod queries;
pub mod streams;
pub mod tpch;
pub mod webgraph;

pub use squall_expr::MultiJoinSpec;
