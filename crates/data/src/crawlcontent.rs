//! CrawlContent `{Url, Score}` (§7.1).
//!
//! "CrawlContent refers to a relation with the schema {Url, Score}, where
//! Score stands for the output of any text analysis tools. As the text
//! analysis tools are out of the scope of this work ... we synthesize
//! them." — one row per distinct URL (Url is the primary key, hence
//! skew-free, which the WebAnalytics Hybrid-Hypercube analysis relies on).

use squall_common::{DataType, Schema, SplitMix64, Tuple, Value};

pub fn crawlcontent_schema() -> Schema {
    Schema::of(&[("Url", DataType::Int), ("Score", DataType::Float)])
}

/// One `(url, score)` row for every URL id in `0..n_urls`.
pub fn generate(n_urls: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = SplitMix64::new(seed);
    (0..n_urls)
        .map(|u| Tuple::new(vec![Value::Int(u as i64), Value::Float(rng.next_f64() * 100.0)]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_url_primary_key() {
        let rows = generate(1000, 4);
        assert_eq!(rows.len(), 1000);
        let mut urls: Vec<i64> = rows.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        urls.sort_unstable();
        urls.dedup();
        assert_eq!(urls.len(), 1000, "Url must be unique (primary key)");
    }

    #[test]
    fn scores_in_range_and_deterministic() {
        let a = generate(100, 7);
        let b = generate(100, 7);
        assert_eq!(a, b);
        for t in &a {
            let s = t.get(1).as_float().unwrap();
            assert!((0.0..100.0).contains(&s));
        }
    }
}
