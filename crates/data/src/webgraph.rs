//! Synthetic WebGraph — the Common Crawl hyperlink graph stand-in (§7.1).
//!
//! Relation `{FromUrl, ToUrl}` with URLs as integer ids. Targets are drawn
//! zipf (heavy-tailed in-degree, like real hyperlink graphs); node 0 plays
//! 'blogspot.com', "which has the highest in-degree in the dataset"
//! (WebAnalytics query, §7.3). Sources are near-uniform with a small hub
//! out-degree boost so 2-hop paths through the hub exist.

use squall_common::{DataType, Schema, SplitMix64, Tuple, Value, Zipf};

/// The hub node id ('blogspot.com').
pub const HUB: i64 = 0;

pub fn webgraph_schema() -> Schema {
    Schema::of(&[("FromUrl", DataType::Int), ("ToUrl", DataType::Int)])
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct WebGraphGen {
    pub n_nodes: usize,
    pub n_arcs: usize,
    /// Zipf exponent of the in-degree distribution (≈1.1–1.5 for real
    /// hyperlink graphs at host granularity).
    pub theta: f64,
    /// Fraction of arcs leaving the hub (gives the hub out-degree the
    /// WebAnalytics query needs).
    pub hub_out_fraction: f64,
    pub seed: u64,
}

impl WebGraphGen {
    pub fn new(n_nodes: usize, n_arcs: usize, seed: u64) -> WebGraphGen {
        WebGraphGen { n_nodes, n_arcs, theta: 1.2, hub_out_fraction: 0.02, seed }
    }

    /// Generate the arc list.
    pub fn generate(&self) -> Vec<Tuple> {
        assert!(self.n_nodes >= 2);
        let zipf = Zipf::new(self.n_nodes, self.theta);
        let mut rng = SplitMix64::new(self.seed);
        (0..self.n_arcs)
            .map(|_| {
                let from = if rng.next_f64() < self.hub_out_fraction {
                    HUB
                } else {
                    rng.next_below(self.n_nodes) as i64
                };
                // Zipf rank 0 (the hub) gets the highest in-degree.
                let to = zipf.sample(&mut rng) as i64;
                Tuple::new(vec![Value::Int(from), Value::Int(to)])
            })
            .collect()
    }

    /// A deterministic fraction of the arcs — the paper runs
    /// 3-Reachability on a "0.5% sample of the Host WebGraph" so the
    /// pipeline of 2-way joins fits in memory.
    pub fn sample(&self, fraction: f64) -> Vec<Tuple> {
        let all = self.generate();
        let keep = ((all.len() as f64) * fraction).round() as usize;
        all.into_iter().take(keep).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_determinism() {
        let g = WebGraphGen::new(1000, 5000, 3);
        let a = g.generate();
        assert_eq!(a.len(), 5000);
        assert_eq!(a, WebGraphGen::new(1000, 5000, 3).generate());
    }

    #[test]
    fn hub_has_highest_in_degree() {
        let arcs = WebGraphGen::new(2000, 20_000, 5).generate();
        let mut indeg = vec![0usize; 2000];
        for t in &arcs {
            indeg[t.get(1).as_int().unwrap() as usize] += 1;
        }
        let hub_deg = indeg[HUB as usize];
        let max_other = indeg[1..].iter().copied().max().unwrap();
        assert!(hub_deg > max_other, "hub in-degree {hub_deg} vs max other {max_other}");
        // Heavy tail: the hub alone takes a sizable share.
        assert!(hub_deg as f64 / arcs.len() as f64 > 0.05);
    }

    #[test]
    fn hub_has_outgoing_arcs() {
        let arcs = WebGraphGen::new(2000, 20_000, 5).generate();
        let hub_out = arcs.iter().filter(|t| t.get(0).as_int().unwrap() == HUB).count();
        assert!(hub_out > 100, "hub must link out for 2-hop paths, got {hub_out}");
    }

    #[test]
    fn sample_is_a_prefix_fraction() {
        let g = WebGraphGen::new(500, 10_000, 9);
        let s = g.sample(0.005);
        assert_eq!(s.len(), 50);
        assert_eq!(s[..], g.generate()[..50]);
    }

    #[test]
    fn node_ids_in_range() {
        let arcs = WebGraphGen::new(100, 1000, 1).generate();
        for t in &arcs {
            assert!((0..100).contains(&t.get(0).as_int().unwrap()));
            assert!((0..100).contains(&t.get(1).as_int().unwrap()));
        }
    }
}
