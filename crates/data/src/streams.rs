//! Ordered and drifting streams for the §5 skew-type ablations.

use squall_common::{SplitMix64, Tuple, Value, Zipf};

/// A sorted-key stream: the temporal-skew workload (§5: "in the case of
/// sorted tuple arrival ... only one machine will be active at a time").
/// Keys 0..n_keys, each repeated `run_length` times, in ascending order.
pub fn sorted_stream(n_keys: usize, run_length: usize) -> Vec<Tuple> {
    (0..n_keys)
        .flat_map(|k| std::iter::repeat_n(k as i64, run_length))
        .map(|k| Tuple::new(vec![Value::Int(k)]))
        .collect()
}

/// The same multiset of keys in shuffled arrival order (temporal skew is
/// purely an ordering phenomenon).
pub fn shuffled_stream(n_keys: usize, run_length: usize, seed: u64) -> Vec<Tuple> {
    let mut v = sorted_stream(n_keys, run_length);
    SplitMix64::new(seed).shuffle(&mut v);
    v
}

/// Zipf-keyed stream (data skew).
pub fn zipf_stream(n: usize, domain: usize, theta: f64, seed: u64) -> Vec<Tuple> {
    let z = Zipf::new(domain, theta);
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| Tuple::new(vec![Value::Int(z.sample(&mut rng) as i64)])).collect()
}

/// A stream whose key distribution *changes mid-stream* (skew
/// fluctuations, §5): first half hot key `hot_a`, second half hot key
/// `hot_b` — the adversarial pattern that defeats range partitioning.
pub fn fluctuating_stream(
    n: usize,
    domain: usize,
    hot_a: i64,
    hot_b: i64,
    hot_share: f64,
    seed: u64,
) -> Vec<Tuple> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let hot = if i < n / 2 { hot_a } else { hot_b };
            let k = if rng.next_f64() < hot_share { hot } else { rng.next_below(domain) as i64 };
            Tuple::new(vec![Value::Int(k)])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_stream_is_sorted() {
        let s = sorted_stream(10, 5);
        assert_eq!(s.len(), 50);
        for w in s.windows(2) {
            assert!(w[0].get(0) <= w[1].get(0));
        }
    }

    #[test]
    fn shuffled_preserves_multiset() {
        let a = sorted_stream(20, 3);
        let mut b = shuffled_stream(20, 3, 5);
        assert_ne!(a, b, "order must differ");
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn fluctuating_stream_switches_hot_key() {
        let s = fluctuating_stream(10_000, 100, 7, 42, 0.6, 3);
        let first_half = &s[..5000];
        let second_half = &s[5000..];
        let count =
            |xs: &[Tuple], k: i64| xs.iter().filter(|t| t.get(0).as_int().unwrap() == k).count();
        assert!(count(first_half, 7) > 2500);
        assert!(count(second_half, 42) > 2500);
        assert!(count(first_half, 42) < 200);
    }

    #[test]
    fn zipf_stream_has_hot_head() {
        let s = zipf_stream(10_000, 1000, 2.0, 1);
        let hot = s.iter().filter(|t| t.get(0).as_int().unwrap() == 0).count();
        assert!(hot > 5000);
    }
}
