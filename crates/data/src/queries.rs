//! The paper's evaluation queries (§6, §7) as ready-to-run
//! [`MultiJoinSpec`] + data bundles. Selections are pushed into the data
//! (Squall's optimizer pushes selections to the sources, §2), skew hints
//! are set the way the paper's analysis sets them, and `est_size` reflects
//! the post-selection cardinalities the optimizers consume.

use squall_common::{Tuple, Value};
use squall_expr::{JoinAtom, MultiJoinSpec, RelationDef};

use crate::crawlcontent;
use crate::google_cluster::{self, GoogleClusterData, FAIL};
use crate::tpch::{self, TpchData};
use crate::webgraph::{self, HUB};

/// A query ready for `squall_core::driver::run_multiway`-style execution
/// (the data crate does not depend on the engine, so the link is textual).
pub struct QueryInstance {
    pub spec: MultiJoinSpec,
    pub data: Vec<Vec<Tuple>>,
    /// GROUP BY columns in the join-output schema (empty = no grouping),
    /// for the query's aggregation stage.
    pub agg_group_cols: Vec<usize>,
}

/// §7.2 — the 3-step reachability query over WebGraph:
/// `W1.ToUrl = W2.FromUrl AND W2.ToUrl = W3.FromUrl`,
/// `GROUP BY W1.FromUrl, COUNT(*)`.
pub fn reachability3(arcs: &[Tuple]) -> QueryInstance {
    let n = arcs.len() as u64;
    let mk = |name: &str| RelationDef::new(name, webgraph::webgraph_schema(), n);
    let spec = MultiJoinSpec::new(
        vec![mk("W1"), mk("W2"), mk("W3")],
        vec![
            JoinAtom::eq(0, 1, 1, 0), // W1.ToUrl = W2.FromUrl
            JoinAtom::eq(1, 1, 2, 0), // W2.ToUrl = W3.FromUrl
        ],
    )
    .expect("static spec");
    QueryInstance {
        spec,
        data: vec![arcs.to_vec(), arcs.to_vec(), arcs.to_vec()],
        agg_group_cols: vec![0], // W1.FromUrl
    }
}

/// §7.3 — TPCH9-Partial: `Lineitem ⋈ PartSupp ⋈ Part` from TPC-H Q9.
/// Q9 joins LINEITEM to PARTSUPP on (partkey, suppkey) and to PART on
/// partkey; under zipf(θ>0) LINEITEM.PARTKEY is marked skewed (suppkey's
/// correlated skew is "not high enough to justify randomization", §7.3).
pub fn tpch9_partial(data: &TpchData, partkey_skewed: bool) -> QueryInstance {
    let mut li_schema = tpch::lineitem_schema();
    if partkey_skewed {
        li_schema.set_skewed("partkey").unwrap();
    }
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new("LINEITEM", li_schema, data.lineitem.len() as u64),
            RelationDef::new("PARTSUPP", tpch::partsupp_schema(), data.partsupp.len() as u64),
            RelationDef::new("PART", tpch::part_schema(), data.part.len() as u64),
        ],
        vec![
            JoinAtom::eq(0, 1, 1, 0), // L.partkey = PS.partkey
            JoinAtom::eq(0, 2, 1, 1), // L.suppkey = PS.suppkey
            JoinAtom::eq(1, 0, 2, 0), // PS.partkey = P.partkey
        ],
    )
    .expect("static spec");
    QueryInstance {
        spec,
        data: vec![data.lineitem.clone(), data.partsupp.clone(), data.part.clone()],
        agg_group_cols: vec![],
    }
}

/// §7.4 — TPC-H Q3's join core: `CUSTOMER ⋈ ORDERS ⋈ LINEITEM`
/// (LIMIT/ORDER BY are dropped, as in the paper: "we disregard LIMIT and
/// ORDER BY clauses, as Squall does not support these constructs yet").
pub fn tpch_q3(data: &TpchData) -> QueryInstance {
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new("CUSTOMER", tpch::customer_schema(), data.customer.len() as u64),
            RelationDef::new("ORDERS", tpch::orders_schema(), data.orders.len() as u64),
            RelationDef::new("LINEITEM", tpch::lineitem_schema(), data.lineitem.len() as u64),
        ],
        vec![
            JoinAtom::eq(0, 0, 1, 1), // C.custkey = O.custkey
            JoinAtom::eq(1, 0, 2, 0), // O.orderkey = L.orderkey
        ],
    )
    .expect("static spec");
    QueryInstance {
        spec,
        data: vec![data.customer.clone(), data.orders.clone(), data.lineitem.clone()],
        agg_group_cols: vec![3], // O.orderkey
    }
}

/// §7.3 — the WebAnalytics query: 2-hop paths through the hub joined with
/// CrawlContent:
///
/// ```sql
/// SELECT W1.FromUrl, Score, COUNT(*)
/// FROM WebGraph W1, WebGraph W2, CrawlContent C
/// WHERE W1.ToUrl = 'blogspot.com' AND W2.FromUrl = 'blogspot.com'
///   AND W1.ToUrl = W2.FromUrl AND W1.FromUrl = C.Url
/// GROUP BY W1.FromUrl, Score
/// ```
///
/// The constant selections are pushed into the data; the surviving join
/// key `W1.ToUrl = W2.FromUrl` has exactly one distinct value, so both
/// occurrences are marked skewed ("this is optimal because WebGraph is
/// highly skewed, as there is only one distinct value of this join key");
/// `W1.FromUrl = C.Url` stays hash-partitioned (`C.Url` is the primary
/// key, hence skew-free).
pub fn webanalytics(arcs: &[Tuple], content: &[Tuple]) -> QueryInstance {
    let w1: Vec<Tuple> = arcs.iter().filter(|t| t.get(1) == &Value::Int(HUB)).cloned().collect();
    let w2: Vec<Tuple> = arcs.iter().filter(|t| t.get(0) == &Value::Int(HUB)).cloned().collect();
    let mut w1_schema = webgraph::webgraph_schema();
    w1_schema.set_skewed("ToUrl").unwrap();
    let mut w2_schema = webgraph::webgraph_schema();
    w2_schema.set_skewed("FromUrl").unwrap();
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new("W1", w1_schema, w1.len() as u64),
            RelationDef::new("W2", w2_schema, w2.len() as u64),
            RelationDef::new("C", crawlcontent::crawlcontent_schema(), content.len() as u64),
        ],
        vec![
            JoinAtom::eq(0, 1, 1, 0), // W1.ToUrl = W2.FromUrl (single value)
            JoinAtom::eq(0, 0, 2, 0), // W1.FromUrl = C.Url
        ],
    )
    .expect("static spec");
    QueryInstance {
        spec,
        data: vec![w1, w2, content.to_vec()],
        agg_group_cols: vec![0, 5], // W1.FromUrl, C.Score
    }
}

/// §7.4 — the Google TaskCount query:
///
/// ```sql
/// SELECT M.machineID, M.platform, COUNT(*)
/// FROM JOB_EVENTS J, TASK_EVENTS T, MACHINE_EVENTS M
/// WHERE T.eventType = FAIL AND J.jobID = T.jobID
///   AND M.machineID = T.machineID
/// GROUP BY M.machineID, M.platform
/// ```
///
/// The FAIL selection is pushed into TASK_EVENTS.
pub fn google_taskcount(data: &GoogleClusterData) -> QueryInstance {
    let failed: Vec<Tuple> =
        data.task_events.iter().filter(|t| t.get(2) == &Value::Int(FAIL)).cloned().collect();
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new(
                "JOB_EVENTS",
                google_cluster::job_events_schema(),
                data.job_events.len() as u64,
            ),
            RelationDef::new(
                "TASK_EVENTS",
                google_cluster::task_events_schema(),
                failed.len() as u64,
            ),
            RelationDef::new(
                "MACHINE_EVENTS",
                google_cluster::machine_events_schema(),
                data.machine_events.len() as u64,
            ),
        ],
        vec![
            JoinAtom::eq(0, 0, 1, 0), // J.jobID = T.jobID
            JoinAtom::eq(2, 0, 1, 1), // M.machineID = T.machineID
        ],
    )
    .expect("static spec");
    QueryInstance {
        spec,
        data: vec![data.job_events.clone(), failed, data.machine_events.clone()],
        // Output layout: J(3 cols), T(3 cols), M(2 cols) → machineID at 6,
        // platform at 7.
        agg_group_cols: vec![6, 7],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::TpchGen;
    use crate::webgraph::WebGraphGen;

    #[test]
    fn reachability3_shape() {
        let arcs = WebGraphGen::new(100, 500, 1).generate();
        let q = reachability3(&arcs);
        assert_eq!(q.spec.n_relations(), 3);
        assert!(q.spec.is_connected() && q.spec.is_acyclic());
        assert_eq!(q.data.iter().map(|d| d.len()).sum::<usize>(), 1500);
    }

    #[test]
    fn tpch9_partial_key_classes() {
        let data = TpchGen::new(0.1, 2.0, 1).generate();
        let q = tpch9_partial(&data, true);
        // Two classes: the 3-relation partkey class and the 2-relation
        // suppkey class (§3.2 / §7.3).
        let classes = q.spec.key_classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].relations().len(), 3);
        assert_eq!(classes[1].relations().len(), 2);
        assert!(!q.spec.is_skew_free(0, 1), "L.partkey must be marked skewed");
        assert!(q.spec.is_skew_free(1, 0), "PS.partkey stays skew-free");
    }

    #[test]
    fn q3_is_a_chain() {
        let data = TpchGen::new(0.1, 0.0, 2).generate();
        let q = tpch_q3(&data);
        assert!(q.spec.is_connected() && q.spec.is_acyclic());
        assert_eq!(q.spec.relations[2].name, "LINEITEM");
    }

    #[test]
    fn webanalytics_selections_pushed() {
        let arcs = WebGraphGen::new(500, 10_000, 3).generate();
        let content = crawlcontent::generate(500, 4);
        let q = webanalytics(&arcs, &content);
        // W1: all arcs into the hub; W2: all arcs out of the hub.
        assert!(q.data[0].iter().all(|t| t.get(1) == &Value::Int(HUB)));
        assert!(q.data[1].iter().all(|t| t.get(0) == &Value::Int(HUB)));
        assert!(!q.data[0].is_empty() && !q.data[1].is_empty());
        // Skew hints exactly as §7.3 argues.
        assert!(!q.spec.is_skew_free(0, 1));
        assert!(!q.spec.is_skew_free(1, 0));
        assert!(q.spec.is_skew_free(2, 0));
        // W2 is much bigger than W1 (hub in-degree ≫ hub out-degree is
        // false here — out-fraction is 2% while in-share is ~the zipf top —
        // so just check sizes are recorded).
        assert_eq!(q.spec.relations[0].est_size, q.data[0].len() as u64);
    }

    #[test]
    fn taskcount_filters_fails() {
        let d = crate::google_cluster::generate(5000, 5);
        let q = google_taskcount(&d);
        assert!(q.data[1].iter().all(|t| t.get(2) == &Value::Int(FAIL)));
        assert!(!q.data[1].is_empty());
        assert_eq!(q.agg_group_cols, vec![6, 7]);
        let out = q.spec.output_schema();
        assert_eq!(out.index_of("MACHINE_EVENTS.machineID").unwrap(), 6);
        assert_eq!(out.index_of("MACHINE_EVENTS.platform").unwrap(), 7);
    }
}
