//! A scaled-down TPC-H subset with TPC-H's relative cardinalities.
//!
//! At scale factor 1 TPC-H holds 150k customers, 1.5M orders, 6M lineitems,
//! 200k parts and 800k partsupps. `TpchGen::new(scale_units, ...)` keeps
//! the same ratios with `scale_units` lineitems per 6000 (so
//! `scale_units = 1` ≈ a 1/1000 sample of SF1). PARTKEY in LINEITEM can be
//! drawn zipf(θ) — the paper's skewed configuration uses θ = 2 — while
//! PARTSUPP and PART keep one row (four rows) per part, so the key joins
//! remain foreign-key joins.

use squall_common::{DataType, Schema, SplitMix64, Tuple, Value, Zipf};

/// Column layouts (see the paper's queries; only the columns they touch).
pub fn customer_schema() -> Schema {
    Schema::of(&[
        ("custkey", DataType::Int),
        ("name", DataType::Str),
        ("mktsegment", DataType::Str),
    ])
}

pub fn orders_schema() -> Schema {
    // orderdate is a STRING on purpose: parsing it to a date is the cost
    // Figure 5 measures.
    Schema::of(&[
        ("orderkey", DataType::Int),
        ("custkey", DataType::Int),
        ("orderdate", DataType::Str),
        ("shippriority", DataType::Int),
    ])
}

pub fn lineitem_schema() -> Schema {
    Schema::of(&[
        ("orderkey", DataType::Int),
        ("partkey", DataType::Int),
        ("suppkey", DataType::Int),
        ("quantity", DataType::Int),
        ("extendedprice", DataType::Float),
        ("shipdate", DataType::Str),
    ])
}

pub fn partsupp_schema() -> Schema {
    Schema::of(&[
        ("partkey", DataType::Int),
        ("suppkey", DataType::Int),
        ("supplycost", DataType::Float),
    ])
}

pub fn part_schema() -> Schema {
    Schema::of(&[("partkey", DataType::Int), ("name", DataType::Str), ("ptype", DataType::Str)])
}

const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const TYPES: [&str; 4] = ["ECONOMY", "STANDARD", "PROMO", "LARGE"];

/// The generated database.
#[derive(Debug, Clone)]
pub struct TpchData {
    pub customer: Vec<Tuple>,
    pub orders: Vec<Tuple>,
    pub lineitem: Vec<Tuple>,
    pub partsupp: Vec<Tuple>,
    pub part: Vec<Tuple>,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchGen {
    /// 1 unit = 6000 lineitems / 1500 orders / 150 customers / 200 parts /
    /// 800 partsupps (TPC-H ratios).
    pub scale_units: f64,
    /// Zipf exponent for LINEITEM.PARTKEY; 0.0 = uniform (the paper's
    /// skewed runs use 2.0).
    pub partkey_theta: f64,
    pub seed: u64,
}

impl TpchGen {
    pub fn new(scale_units: f64, partkey_theta: f64, seed: u64) -> TpchGen {
        assert!(scale_units > 0.0);
        TpchGen { scale_units, partkey_theta, seed }
    }

    pub fn n_lineitem(&self) -> usize {
        (6000.0 * self.scale_units) as usize
    }

    pub fn n_orders(&self) -> usize {
        (1500.0 * self.scale_units) as usize
    }

    pub fn n_customer(&self) -> usize {
        (150.0 * self.scale_units).max(10.0) as usize
    }

    pub fn n_part(&self) -> usize {
        (200.0 * self.scale_units).max(8.0) as usize
    }

    pub fn n_partsupp(&self) -> usize {
        self.n_part() * 4
    }

    fn date_string(rng: &mut SplitMix64) -> String {
        let year = 1992 + rng.next_below(7) as i32;
        let month = 1 + rng.next_below(12) as u32;
        let day = 1 + rng.next_below(28) as u32;
        format!("{year:04}-{month:02}-{day:02}")
    }

    /// Generate everything.
    pub fn generate(&self) -> TpchData {
        let mut rng = SplitMix64::new(self.seed);
        let n_cust = self.n_customer();
        let n_orders = self.n_orders();
        let n_li = self.n_lineitem();
        let n_part = self.n_part();
        let n_supp = (10.0 * self.scale_units).max(4.0) as usize;

        let customer: Vec<Tuple> = (0..n_cust)
            .map(|c| {
                Tuple::new(vec![
                    Value::Int(c as i64),
                    Value::str(format!("Customer#{c:09}")),
                    Value::str(SEGMENTS[rng.next_below(SEGMENTS.len())]),
                ])
            })
            .collect();

        let orders: Vec<Tuple> = (0..n_orders)
            .map(|o| {
                Tuple::new(vec![
                    Value::Int(o as i64),
                    Value::Int(rng.next_below(n_cust) as i64),
                    Value::str(Self::date_string(&mut rng)),
                    Value::Int(rng.next_below(5) as i64),
                ])
            })
            .collect();

        // Skewable partkey. TPC-H gives each part 4 suppliers; suppkey is a
        // deterministic function of (partkey, slot) — so partkey skew
        // induces correlated suppkey skew, like the real generator.
        let zipf = if self.partkey_theta > 0.0 {
            Some(Zipf::new(n_part, self.partkey_theta))
        } else {
            None
        };
        let draw_part = |rng: &mut SplitMix64| -> i64 {
            match &zipf {
                Some(z) => z.sample(rng) as i64,
                None => rng.next_below(n_part) as i64,
            }
        };
        let suppkey_of = |partkey: i64, slot: usize| -> i64 {
            (partkey as usize + slot * (n_supp / 4).max(1)) as i64 % n_supp as i64
        };

        let lineitem: Vec<Tuple> = (0..n_li)
            .map(|_| {
                let partkey = draw_part(&mut rng);
                let slot = rng.next_below(4);
                Tuple::new(vec![
                    Value::Int(rng.next_below(n_orders) as i64),
                    Value::Int(partkey),
                    Value::Int(suppkey_of(partkey, slot)),
                    Value::Int(1 + rng.next_below(50) as i64),
                    Value::Float((100 + rng.next_below(99_900)) as f64 / 100.0),
                    Value::str(Self::date_string(&mut rng)),
                ])
            })
            .collect();

        let partsupp: Vec<Tuple> = (0..n_part)
            .flat_map(|p| {
                let mut rows = Vec::with_capacity(4);
                for slot in 0..4 {
                    rows.push(Tuple::new(vec![
                        Value::Int(p as i64),
                        Value::Int(suppkey_of(p as i64, slot)),
                        Value::Float((1 + rng.next_below(100_000)) as f64 / 100.0),
                    ]));
                }
                rows
            })
            .collect();

        let part: Vec<Tuple> = (0..n_part)
            .map(|p| {
                Tuple::new(vec![
                    Value::Int(p as i64),
                    Value::str(format!("Part#{p:09}")),
                    Value::str(TYPES[rng.next_below(TYPES.len())]),
                ])
            })
            .collect();

        TpchData { customer, orders, lineitem, partsupp, part }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::Date;

    #[test]
    fn cardinalities_follow_tpch_ratios() {
        let data = TpchGen::new(1.0, 0.0, 1).generate();
        assert_eq!(data.lineitem.len(), 6000);
        assert_eq!(data.orders.len(), 1500);
        assert_eq!(data.customer.len(), 150);
        assert_eq!(data.part.len(), 200);
        assert_eq!(data.partsupp.len(), 800);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TpchGen::new(0.2, 2.0, 7).generate();
        let b = TpchGen::new(0.2, 2.0, 7).generate();
        assert_eq!(a.lineitem, b.lineitem);
        let c = TpchGen::new(0.2, 2.0, 8).generate();
        assert_ne!(a.lineitem, c.lineitem);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let gen = TpchGen::new(0.5, 2.0, 3);
        let data = gen.generate();
        let n_part = gen.n_part() as i64;
        let n_orders = gen.n_orders() as i64;
        let n_cust = gen.n_customer() as i64;
        for li in &data.lineitem {
            assert!((0..n_orders).contains(&li.get(0).as_int().unwrap()));
            assert!((0..n_part).contains(&li.get(1).as_int().unwrap()));
        }
        for o in &data.orders {
            assert!((0..n_cust).contains(&o.get(1).as_int().unwrap()));
        }
        // Every lineitem (partkey, suppkey) pair exists in partsupp — the
        // TPCH9-Partial join is a real FK join.
        let ps: std::collections::HashSet<(i64, i64)> = data
            .partsupp
            .iter()
            .map(|t| (t.get(0).as_int().unwrap(), t.get(1).as_int().unwrap()))
            .collect();
        for li in &data.lineitem {
            let key = (li.get(1).as_int().unwrap(), li.get(2).as_int().unwrap());
            assert!(ps.contains(&key), "dangling lineitem FK {key:?}");
        }
    }

    #[test]
    fn zipf_partkey_is_skewed_uniform_is_not() {
        let skewed = TpchGen::new(1.0, 2.0, 5).generate();
        let hot = skewed.lineitem.iter().filter(|t| t.get(1).as_int().unwrap() == 0).count() as f64
            / skewed.lineitem.len() as f64;
        assert!(hot > 0.5, "zipf(2) top part should take >50% of lineitems, got {hot}");
        let uniform = TpchGen::new(1.0, 0.0, 5).generate();
        let hot_u = uniform.lineitem.iter().filter(|t| t.get(1).as_int().unwrap() == 0).count()
            as f64
            / uniform.lineitem.len() as f64;
        assert!(hot_u < 0.05);
    }

    #[test]
    fn dates_parse() {
        let data = TpchGen::new(0.1, 0.0, 9).generate();
        for o in &data.orders {
            let s = o.get(2).as_str().unwrap();
            Date::parse(s).expect("valid date string");
        }
    }

    #[test]
    fn schemas_match_generated_arity() {
        let data = TpchGen::new(0.1, 0.0, 2).generate();
        assert_eq!(data.customer[0].arity(), customer_schema().arity());
        assert_eq!(data.orders[0].arity(), orders_schema().arity());
        assert_eq!(data.lineitem[0].arity(), lineitem_schema().arity());
        assert_eq!(data.partsupp[0].arity(), partsupp_schema().arity());
        assert_eq!(data.part[0].arity(), part_schema().arity());
    }
}
