//! Synthetic Google cluster-monitoring trace (§6, §7.4).
//!
//! Three relations mirroring the 2011 trace's event tables, sized so that
//! "the total size of Machine_Events and Job_Events is only 14.5% of the
//! relation Task_Events size" (§7.4):
//!
//! * `MACHINE_EVENTS(machineID, platform)`
//! * `JOB_EVENTS(jobID, eventType, scheduling_class)`
//! * `TASK_EVENTS(jobID, machineID, eventType)`
//!
//! Event types follow the trace's encoding; `FAIL = 3`. Task placement is
//! mildly skewed across machines (busy machines fail more tasks), giving
//! the TaskCount query a realistic group-size distribution.

use squall_common::{DataType, Schema, SplitMix64, Tuple, Value, Zipf};

/// The trace's FAIL event code.
pub const FAIL: i64 = 3;

pub fn machine_events_schema() -> Schema {
    Schema::of(&[("machineID", DataType::Int), ("platform", DataType::Str)])
}

pub fn job_events_schema() -> Schema {
    Schema::of(&[
        ("jobID", DataType::Int),
        ("eventType", DataType::Int),
        ("scheduling_class", DataType::Int),
    ])
}

pub fn task_events_schema() -> Schema {
    Schema::of(&[
        ("jobID", DataType::Int),
        ("machineID", DataType::Int),
        ("eventType", DataType::Int),
    ])
}

const PLATFORMS: [&str; 3] = ["PlatformA", "PlatformB", "PlatformC"];

#[derive(Debug, Clone)]
pub struct GoogleClusterData {
    pub machine_events: Vec<Tuple>,
    pub job_events: Vec<Tuple>,
    pub task_events: Vec<Tuple>,
}

/// Generate `n_tasks` TASK_EVENTS rows plus machine/job tables sized to
/// 14.5% of that, split ≈ 1:1.45 (machines are fewer than jobs in the
/// trace).
pub fn generate(n_tasks: usize, seed: u64) -> GoogleClusterData {
    let mut rng = SplitMix64::new(seed);
    let side = ((n_tasks as f64) * 0.145) as usize;
    let n_machines = (side * 2 / 5).max(4);
    let n_jobs = side - n_machines;

    let machine_events: Vec<Tuple> = (0..n_machines)
        .map(|m| {
            Tuple::new(vec![
                Value::Int(m as i64),
                Value::str(PLATFORMS[rng.next_below(PLATFORMS.len())]),
            ])
        })
        .collect();

    let job_events: Vec<Tuple> = (0..n_jobs)
        .map(|j| {
            Tuple::new(vec![
                Value::Int(j as i64),
                Value::Int(rng.next_below(9) as i64),
                Value::Int(rng.next_below(4) as i64),
            ])
        })
        .collect();

    // Busy machines attract more tasks (mild zipf), and ~12% of task
    // events are FAILs (roughly the trace's failure share).
    let machine_zipf = Zipf::new(n_machines, 0.8);
    let task_events: Vec<Tuple> = (0..n_tasks)
        .map(|_| {
            let event = if rng.next_f64() < 0.12 { FAIL } else { rng.next_below(3) as i64 };
            Tuple::new(vec![
                Value::Int(rng.next_below(n_jobs) as i64),
                Value::Int(machine_zipf.sample(&mut rng) as i64),
                Value::Int(event),
            ])
        })
        .collect();

    GoogleClusterData { machine_events, job_events, task_events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_sizes_match_paper() {
        let d = generate(10_000, 1);
        let side = d.machine_events.len() + d.job_events.len();
        let ratio = side as f64 / d.task_events.len() as f64;
        assert!((ratio - 0.145).abs() < 0.01, "side/task ratio {ratio}");
    }

    #[test]
    fn fail_events_present_with_trace_share() {
        let d = generate(20_000, 2);
        let fails = d.task_events.iter().filter(|t| t.get(2).as_int().unwrap() == FAIL).count();
        let share = fails as f64 / d.task_events.len() as f64;
        assert!((share - 0.12).abs() < 0.02, "FAIL share {share}");
    }

    #[test]
    fn foreign_keys_valid() {
        let d = generate(5_000, 3);
        let n_jobs = d.job_events.len() as i64;
        let n_machines = d.machine_events.len() as i64;
        for t in &d.task_events {
            assert!((0..n_jobs).contains(&t.get(0).as_int().unwrap()));
            assert!((0..n_machines).contains(&t.get(1).as_int().unwrap()));
        }
    }

    #[test]
    fn machines_have_unique_ids_and_platforms() {
        let d = generate(5_000, 4);
        let mut ids: Vec<i64> =
            d.machine_events.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), d.machine_events.len());
        for t in &d.machine_events {
            assert!(PLATFORMS.contains(&t.get(1).as_str().unwrap()));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(1000, 9).task_events, generate(1000, 9).task_events);
    }
}
