//! The unified entry point: one [`Session`] owning the catalog and
//! execution configuration, with the paper's two user-facing interfaces
//! (§2) over the same engine:
//!
//! * **declarative** — [`Session::sql`] parses SQL and runs it;
//! * **imperative** — [`Session::from`] opens a fluent [`QueryBuilder`]
//!   (`.join(..).on(..).filter(..).group_by(..).agg(..)`) that lowers to
//!   the *same* [`Query`] logical block the SQL parser produces, so both
//!   paths hit one optimizer and one runtime.
//!
//! Either path returns a [`ResultSet`] — materialized rows, a streaming
//! row iterator, and the distributed run's [`JoinReport`] metrics — and
//! [`Session::explain`] / [`QueryBuilder::explain`] expose the optimized
//! physical plan as text.
//!
//! ```
//! use squall::{col, count, Session};
//! use squall::common::{tuple, DataType, Schema};
//!
//! let mut session = Session::builder().machines(4).build();
//! session.register(
//!     "R",
//!     Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
//!     vec![tuple![1, 10], tuple![2, 20]],
//! ).unwrap();
//! session.register(
//!     "S",
//!     Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]),
//!     vec![tuple![2, 7], tuple![3, 8]],
//! ).unwrap();
//! let mut sql = session.sql("SELECT R.b, S.c FROM R, S WHERE R.a = S.a").unwrap();
//! let mut imperative = session
//!     .from("R")
//!     .join("S")
//!     .on(col("R.a").eq(col("S.a")))
//!     .select([col("R.b"), col("S.c")])
//!     .run()
//!     .unwrap();
//! assert_eq!(sql.rows(), vec![tuple![20, 7]]);
//! assert_eq!(sql.rows(), imperative.rows());
//! # let _ = count; // re-exported builder helper
//! ```

use std::sync::{Arc, Mutex};

use squall_common::{FxHashMap, Result, Schema, SquallError, Tuple};
use squall_plan::physical::{execute_query, execute_query_stream, PhysicalQuery};
use squall_plan::Catalog;

pub use squall_core::cluster::ClusterSpec;
pub use squall_core::driver::{JoinReport, LocalJoinKind};
pub use squall_expr::AggFunc;
pub use squall_partition::optimizer::SchemeKind;
pub use squall_partition::{ColumnStats, TableStats};
pub use squall_plan::catalog::{SourceDef, SourceKind};
pub use squall_plan::logical::{agg, col, lit, Expr, OrderKey, Query, Window, WindowKind};
pub use squall_plan::optimizer::{OptimizerDecision, OptimizerMode};
pub use squall_plan::physical::{ExecConfig, ResultSet};
pub use squall_runtime::SchedulerStats;

/// Rows sampled per table by [`Session::analyze`] (full scan below it).
const ANALYZE_SAMPLE_CAP: usize = 10_000;

/// `COUNT(*)`.
pub fn count() -> Expr {
    agg(AggFunc::Count, None)
}

/// `SUM(expr)`.
pub fn sum(e: Expr) -> Expr {
    agg(AggFunc::Sum, Some(e))
}

/// `AVG(expr)`.
pub fn avg(e: Expr) -> Expr {
    agg(AggFunc::Avg, Some(e))
}

/// Fluent construction of a [`Session`].
///
/// ```
/// use squall::{LocalJoinKind, SchemeKind, Session};
/// let session = Session::builder()
///     .machines(8)
///     .scheme(SchemeKind::Hybrid)
///     .local(LocalJoinKind::DBToaster)
///     .seed(7)
///     .build();
/// assert_eq!(session.config().machines, 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    config: ExecConfig,
}

impl SessionBuilder {
    /// Join component parallelism (the paper's number of "machines").
    pub fn machines(mut self, machines: usize) -> SessionBuilder {
        self.config.machines = machines;
        self
    }

    /// Force a partitioning scheme. Default: Hybrid-Hypercube, which
    /// subsumes Hash and Random (§3.1).
    pub fn scheme(mut self, scheme: SchemeKind) -> SessionBuilder {
        self.config.scheme = Some(scheme);
        self
    }

    /// Local join algorithm each machine runs (§3.3).
    pub fn local(mut self, local: LocalJoinKind) -> SessionBuilder {
        self.config.local = local;
        self
    }

    /// RNG seed: the same seed, data and config reproduce the same loads
    /// and results.
    pub fn seed(mut self, seed: u64) -> SessionBuilder {
        self.config.seed = seed;
        self
    }

    /// Parallelism of the post-join aggregation component.
    pub fn agg_parallelism(mut self, parallelism: usize) -> SessionBuilder {
        self.config.agg_parallelism = parallelism;
        self
    }

    /// Tolerated hash-over-random load ratio before an attribute is marked
    /// skewed (§3.4 chooser).
    pub fn skew_slack(mut self, slack: f64) -> SessionBuilder {
        self.config.skew_slack = slack;
        self
    }

    /// Worker pool size executing every query's topology. Decoupled from
    /// [`SessionBuilder::machines`]: the cooperative executor runs any
    /// number of machines on this many OS threads (default: the host's
    /// available parallelism).
    pub fn worker_threads(mut self, n: usize) -> SessionBuilder {
        assert!(n > 0, "worker pool needs at least one thread");
        self.config.worker_threads = Some(n);
        self
    }

    /// Tuples per data-plane batch (default
    /// [`squall_runtime::DEFAULT_BATCH_SIZE`]; `1` = per-tuple messaging).
    /// A throughput knob: results and per-machine loads are batch-size
    /// independent.
    pub fn batch_size(mut self, n: usize) -> SessionBuilder {
        assert!(n > 0, "batch size must be positive");
        self.config.batch_size = n;
        self
    }

    /// Split every distributed query across these `squall-worker`
    /// processes (listen addresses) over TCP. The driving process is the
    /// cluster's *coordinator*: it keeps the catalog, hosts the spout
    /// tasks and its share of the join/aggregation machines, and collects
    /// results; the workers host the remaining task ranges. Results and
    /// per-machine loads are placement-independent — a clustered run
    /// returns exactly what the single-process run returns, plus
    /// per-peer wire metrics in [`JoinReport::transport`].
    ///
    /// Start each worker with `squall-worker --listen <addr>` (or
    /// [`squall_core::cluster::run_worker`] in-process); `explain` prints
    /// the task→peer placement.
    pub fn cluster<I, S>(mut self, workers: I) -> SessionBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        // An empty worker list is a misconfiguration; it surfaces as a
        // typed InvalidPlan when a distributed query runs (no panics in
        // the builder).
        self.config.cluster = Some(ClusterSpec::new(workers));
        self
    }

    /// Checkpoint every resident view's operator state every `n` epochs
    /// (default 16; `0` disables). A checkpoint is an aligned snapshot:
    /// an epoch-tagged barrier flows through the data plane, every join
    /// task and the view sink serialize their state, and the coordinator
    /// keeps the latest complete set — the restart point for
    /// [`crate::ViewHandle::recover`] after a worker loss. One-shot
    /// queries ignore this knob.
    pub fn checkpoint_interval(mut self, n: u64) -> SessionBuilder {
        self.config.checkpoint_interval = n;
        self
    }

    /// Declare a cluster peer lost after `ms` milliseconds of heartbeat
    /// silence (default 2000; `0` disables failure detection). Peers
    /// beat at a quarter of this interval when idle; a killed worker
    /// surfaces as a typed [`squall_common::SquallError::WorkerLost`] on
    /// the view. Standing (resident view) topologies only.
    pub fn heartbeat_timeout_ms(mut self, ms: u64) -> SessionBuilder {
        self.config.heartbeat_timeout_ms = ms;
        self
    }

    /// Cost-based plan search per distributed query (default
    /// [`OptimizerMode::On`]): join ordering by subset dynamic
    /// programming over [`Session::analyze`] statistics, plus per-scheme
    /// cost-model selection when no scheme is forced.
    /// [`OptimizerMode::Off`] preserves the written FROM order — the
    /// pre-optimizer planner, kept as the equivalence-testing oracle —
    /// and [`OptimizerMode::Exhaustive`] scores every permutation.
    /// Results are identical in every mode; only performance differs.
    pub fn optimizer(mut self, mode: OptimizerMode) -> SessionBuilder {
        self.config.optimizer = mode;
        self
    }

    /// Freeze the configuration into a [`Session`] with an empty catalog.
    pub fn build(self) -> Session {
        Session {
            catalog: Catalog::new(),
            config: self.config,
            live: Arc::default(),
            views: crate::views::ViewRegistry::default(),
        }
    }
}

/// Reference counts of *live streaming runs* per source name. A streaming
/// [`ResultSet`] holds a [`LiveGuard`] that decrements on release, so the
/// session can refuse to drop a source out from under a running query.
type LiveSources = Arc<Mutex<FxHashMap<String, usize>>>;

/// Attached to a streaming `ResultSet`; releases its sources when the run
/// stops being live (exhaustion, materialization or drop).
struct LiveGuard {
    names: Vec<String>,
    registry: LiveSources,
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        let mut live = self.registry.lock().expect("live-source registry poisoned");
        for name in &self.names {
            if let Some(count) = live.get_mut(name) {
                *count -= 1;
                if *count == 0 {
                    live.remove(name);
                }
            }
        }
    }
}

/// One engine instance: a catalog of registered relations plus the
/// execution configuration every query of this session runs with.
#[derive(Debug, Clone, Default)]
pub struct Session {
    pub(crate) catalog: Catalog,
    pub(crate) config: ExecConfig,
    /// Shared with every streaming `ResultSet` this session hands out
    /// (clones of a session share it too — they share the live runs).
    live: LiveSources,
    /// Resident materialized views (shared across clones, like `live`:
    /// a view created on one clone is visible — and feedable — on all).
    pub(crate) views: crate::views::ViewRegistry,
}

impl Session {
    /// A session with default configuration (4 machines, Hybrid-Hypercube,
    /// DBToaster local joins).
    pub fn new() -> Session {
        Session::default()
    }

    /// Start configuring a session fluently.
    ///
    /// ```
    /// let session = squall::Session::builder().machines(8).batch_size(128).build();
    /// assert_eq!(session.config().machines, 8);
    /// ```
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Register a materialized table. Rejects a duplicate source name or
    /// data that does not match the schema arity with a typed error
    /// ([`squall_common::SquallError::DuplicateSource`] /
    /// [`squall_common::SquallError::InvalidSource`]); use
    /// [`Session::deregister`] first to replace a source.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        data: Vec<Tuple>,
    ) -> Result<&mut Session> {
        self.catalog.register(name, schema, data)?;
        Ok(self)
    }

    /// Register a timestamped stream with a declared event-time column
    /// (which must exist, be `Int`, and hold non-negative values).
    /// Windowed queries over the stream measure windows on that column
    /// unless the query names one explicitly (`WINDOW ... ON <col>` /
    /// [`Window::on`]), and the runtime feeds the stream to the topology
    /// in event-time order.
    ///
    /// ```
    /// use squall::{col, Session, Window};
    /// use squall::common::{tuple, DataType, Schema};
    ///
    /// let schema = Schema::of(&[("ad_id", DataType::Int), ("ts", DataType::Int)]);
    /// let mut session = Session::builder().machines(2).build();
    /// session
    ///     .register_stream("impressions", schema.clone(), vec![tuple![1, 0]], "ts")
    ///     .unwrap()
    ///     .register_stream("clicks", schema, vec![tuple![1, 20], tuple![1, 90]], "ts")
    ///     .unwrap();
    /// let mut hits = session
    ///     .from_as("impressions", "I")
    ///     .join_as("clicks", "C")
    ///     .on(col("I.ad_id").eq(col("C.ad_id")))
    ///     .window(Window::sliding(30))
    ///     .select([col("I.ad_id"), col("C.ts")])
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(hits.rows(), vec![tuple![1, 20]], "the ts=90 click is out of window");
    /// ```
    pub fn register_stream(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        data: Vec<Tuple>,
        time_col: &str,
    ) -> Result<&mut Session> {
        self.catalog.register_stream(name, schema, data, time_col)?;
        Ok(self)
    }

    /// Drop a registered source; returns whether it existed. Refuses with
    /// a typed [`SquallError::SourceInUse`] while a live streaming run
    /// ([`Session::sql_stream`] / [`QueryBuilder::stream`]) still reads
    /// the source — finish, materialize or drop the stream first — or
    /// while a resident materialized view maintains itself over the
    /// source ([`Session::create_view`]; `DROP MATERIALIZED VIEW` first).
    pub fn deregister(&mut self, name: &str) -> Result<bool> {
        let live = self.live.lock().expect("live-source registry poisoned");
        if live.get(name).copied().unwrap_or(0) > 0 {
            return Err(SquallError::SourceInUse { source: name.to_string() });
        }
        drop(live);
        if self.views.reads_source(name) {
            return Err(SquallError::SourceInUse { source: name.to_string() });
        }
        Ok(self.catalog.deregister(name))
    }

    /// The session's source catalog (registered tables and streams).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the source catalog (e.g. to move data between
    /// sessions without re-registering).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The execution configuration every query of this session runs with.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Mutable access to the execution knobs (e.g. to compare schemes on
    /// the same session, as the paper's demo UI does).
    pub fn config_mut(&mut self) -> &mut ExecConfig {
        &mut self.config
    }

    /// Declarative interface: parse and run one SQL statement,
    /// materializing the rows.
    ///
    /// Besides SELECT, the statement may be a view-lifecycle command:
    /// `CREATE MATERIALIZED VIEW <name> AS <select>` launches a resident
    /// topology maintaining the query incrementally (the returned rows
    /// are the view's initial snapshot; see [`Session::create_view`]) and
    /// `DROP MATERIALIZED VIEW <name>` tears it down (no rows; the
    /// lifetime [`JoinReport`] is attached to the result).
    pub fn sql(&self, text: &str) -> Result<ResultSet> {
        match squall_sql::parse_statement(text)? {
            squall_sql::Statement::Select(q) => execute_query(&q, &self.catalog, &self.config),
            squall_sql::Statement::CreateView { name, query } => {
                let view = self.create_view(name, &query)?;
                let rows = view.snapshot()?;
                Ok(ResultSet::materialized(view.schema().clone(), rows, None))
            }
            squall_sql::Statement::DropView { name } => {
                let report = self.drop_view(&name)?;
                let schema = Schema::new(Vec::new());
                Ok(ResultSet::materialized(schema, Vec::new(), Some(report)))
            }
        }
    }

    /// Declarative interface, streaming: rows are yielded through the
    /// [`ResultSet`] iterator *while the topology runs*. A run that fails
    /// mid-way ends the stream early — check [`ResultSet::error`] after
    /// exhaustion before trusting the rows as complete. While the stream
    /// is live its sources are pinned: [`Session::deregister`] on them
    /// returns [`SquallError::SourceInUse`].
    pub fn sql_stream(&self, text: &str) -> Result<ResultSet> {
        self.run_stream(&squall_sql::parse(text)?)
    }

    /// Run an already-built logical query block (materialized).
    pub fn run(&self, query: &Query) -> Result<ResultSet> {
        execute_query(query, &self.catalog, &self.config)
    }

    /// Run an already-built logical query block, streaming. Live streams
    /// pin their sources in the catalog (see [`Session::deregister`]).
    pub fn run_stream(&self, query: &Query) -> Result<ResultSet> {
        let mut rs = execute_query_stream(query, &self.catalog, &self.config)?;
        if rs.is_streaming() {
            let mut names: Vec<String> = query.tables.iter().map(|(t, _)| t.clone()).collect();
            names.sort();
            names.dedup();
            {
                let mut live = self.live.lock().expect("live-source registry poisoned");
                for n in &names {
                    *live.entry(n.clone()).or_insert(0) += 1;
                }
            }
            rs.attach_guard(Box::new(LiveGuard { names, registry: Arc::clone(&self.live) }));
        }
        Ok(rs)
    }

    /// The optimized physical plan for a SQL query, as text: selection
    /// pushdown, output-scheme pruning, join atoms, aggregation shape.
    pub fn explain(&self, text: &str) -> Result<String> {
        self.explain_query(&squall_sql::parse(text)?)
    }

    /// The optimized physical plan for a SQL query *plus the run's
    /// actuals*: the optimizer's estimated-vs-actual cardinality table is
    /// filled from the supplied [`JoinReport`]'s per-relation task
    /// counters (take it from [`ResultSet::report`] after executing the
    /// same statement on this session).
    pub fn explain_with(&self, text: &str, report: &JoinReport) -> Result<String> {
        let query = squall_sql::parse(text)?;
        let mut plan = PhysicalQuery::plan(&query, &self.catalog)?;
        squall_plan::optimizer::optimize(&mut plan, &self.catalog, &self.config)?;
        Ok(plan.explain_with_actuals(Some(report)))
    }

    /// The optimized physical plan for a logical query block, as text,
    /// followed by the executor configuration the session would run it
    /// with — including the task→peer placement when the session runs on
    /// a cluster.
    pub fn explain_query(&self, query: &Query) -> Result<String> {
        let mut plan = PhysicalQuery::plan(query, &self.catalog)?;
        squall_plan::optimizer::optimize(&mut plan, &self.catalog, &self.config)?;
        let mut text = plan.explain_with_actuals(None);
        let workers = match self.config.worker_threads {
            Some(n) => n.to_string(),
            None => "auto".to_string(),
        };
        text.push_str(&format!(
            "executor: {} machines, {} worker threads, batch size {}\n",
            self.config.machines, workers, self.config.batch_size
        ));
        if let Some(cluster) = &self.config.cluster {
            if plan.is_distributed() {
                let (names, parallelism, is_spout) = plan.node_layout(&self.config);
                text.push_str(&format!(
                    "cluster: {} peers over TCP (coordinator + {} workers)\n",
                    cluster.workers.len() + 1,
                    cluster.workers.len()
                ));
                text.push_str(&squall_runtime::describe_placement(
                    &names,
                    &parallelism,
                    &is_spout,
                    &cluster.peer_labels(),
                ));
            } else {
                text.push_str("cluster: single-table query runs locally on the coordinator\n");
            }
        }
        text.push_str(&self.views.describe(&self.config));
        Ok(text)
    }

    /// Collect sampling-based statistics for a registered source: row
    /// count, per-column distinct-count estimates (sample-inverted) and
    /// heavy-hitter frequencies. Tables at or under 10 000 rows are
    /// scanned exactly; larger ones are uniformly sampled with the
    /// session seed. The cost-based optimizer reads these when ordering
    /// joins and selecting schemes; unanalyzed tables fall back to
    /// uniform (`V(R,a) = |R|`, no skew) estimates. Statistics are a
    /// snapshot — re-run after bulk appends/retractions.
    pub fn analyze(&mut self, name: &str) -> Result<&TableStats> {
        self.catalog.analyze(name, ANALYZE_SAMPLE_CAP, self.config.seed)
    }

    /// The statistics [`Session::analyze`] collected for `name`, if any.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.catalog.stats(name)
    }

    /// Append rows to a registered source. The catalog is updated (with
    /// the same validation as registration: arity, and for streams a
    /// non-regressing event time) and every resident materialized view
    /// reading the source incorporates the rows incrementally — a
    /// subsequent [`crate::views::ViewHandle::snapshot`] observes them
    /// (read-your-writes).
    pub fn append(&mut self, source: &str, rows: Vec<Tuple>) -> Result<&mut Session> {
        let ordered = self.order_for_source(source, rows)?;
        self.catalog.append(source, ordered.clone())?;
        self.views.apply_delta(source, &ordered, 1)?;
        Ok(self)
    }

    /// Remove rows from a registered table, one stored occurrence per
    /// given row (streams are append-only; rows that are not stored are a
    /// typed error). Every resident materialized view reading the table
    /// retracts the rows incrementally — aggregates decrease, join
    /// results disappear.
    pub fn retract(&mut self, source: &str, rows: Vec<Tuple>) -> Result<&mut Session> {
        self.catalog.retract(source, &rows)?;
        self.views.apply_delta(source, &rows, -1)?;
        Ok(self)
    }

    /// Stream appends must reach the resident views in event-time order —
    /// sort the batch on the declared column up front (the catalog sorts
    /// its own storage identically).
    fn order_for_source(&self, source: &str, mut rows: Vec<Tuple>) -> Result<Vec<Tuple>> {
        let def = self.catalog.get(source)?;
        if let Some(c) = def.event_time_col() {
            if rows.iter().any(|t| t.arity() != def.schema.arity()) {
                // Let the catalog produce its usual arity error.
                return Ok(rows);
            }
            rows.sort_by_key(|t| t.get(c).as_int().unwrap_or(i64::MAX));
        }
        Ok(rows)
    }

    /// Imperative interface: open a query builder on a first relation
    /// (aliased by its own name).
    // The name mirrors SQL's FROM (and the paper's imperative interface),
    // not the `From` conversion trait.
    #[allow(clippy::should_implement_trait)]
    pub fn from(&self, table: impl Into<String>) -> QueryBuilder<'_> {
        let table = table.into();
        self.from_as(table.clone(), table)
    }

    /// Imperative interface with an explicit alias
    /// (`FROM table AS alias`).
    pub fn from_as(&self, table: impl Into<String>, alias: impl Into<String>) -> QueryBuilder<'_> {
        QueryBuilder {
            session: self,
            tables: vec![(table.into(), alias.into())],
            filters: Vec::new(),
            group_by: Vec::new(),
            having: Vec::new(),
            select: Vec::new(),
            window: None,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// Fluent imperative query construction — the paper's functional
/// interface, bound to a session. Lowers to exactly the [`Query`] block
/// the SQL parser produces (see [`QueryBuilder::build`]), so the
/// optimizer and runtime treat both interfaces identically.
///
/// Select-list rule: items accumulate in call order from
/// [`QueryBuilder::select`] / [`QueryBuilder::select_as`] /
/// [`QueryBuilder::agg`]; if only aggregates were requested and a GROUP BY
/// is present, the group-by columns are prepended (SQL's
/// `SELECT k, COUNT(*) … GROUP BY k` shape).
#[derive(Debug, Clone)]
pub struct QueryBuilder<'s> {
    session: &'s Session,
    tables: Vec<(String, String)>,
    filters: Vec<Expr>,
    group_by: Vec<Expr>,
    having: Vec<Expr>,
    select: Vec<(Expr, Option<String>)>,
    window: Option<Window>,
    order_by: Vec<OrderKey>,
    limit: Option<u64>,
}

impl QueryBuilder<'_> {
    /// Add a relation (aliased by its own name).
    pub fn join(mut self, table: impl Into<String>) -> Self {
        let table = table.into();
        self.tables.push((table.clone(), table));
        self
    }

    /// Add a relation with an explicit alias.
    pub fn join_as(mut self, table: impl Into<String>, alias: impl Into<String>) -> Self {
        self.tables.push((table.into(), alias.into()));
        self
    }

    /// Join predicate. Sugar for [`QueryBuilder::filter`] — the optimizer
    /// classifies each conjunct as a pushed-down selection or a join atom
    /// by the relations it touches, exactly as it does for SQL WHERE.
    pub fn on(self, predicate: Expr) -> Self {
        self.filter(predicate)
    }

    /// Add a WHERE conjunct (top-level ANDs are flattened at
    /// [`QueryBuilder::build`], via the same [`Query::filter`] the SQL
    /// parser uses).
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.filters.push(predicate);
        self
    }

    /// GROUP BY columns.
    pub fn group_by(mut self, cols: impl IntoIterator<Item = Expr>) -> Self {
        self.group_by.extend(cols);
        self
    }

    /// Add a HAVING conjunct over the aggregate output — SQL's
    /// `HAVING <predicate>`. May reference GROUP BY columns and aggregate
    /// calls (including aggregates not in the SELECT list, which are
    /// computed as hidden columns):
    /// `.having(count().gt(lit(5)))`. Requires aggregation.
    pub fn having(mut self, predicate: Expr) -> Self {
        self.having.push(predicate);
        self
    }

    /// Apply window semantics — `.window(Window::sliding(30).on("ts"))`
    /// or `.window(Window::tumbling(60))`. Without [`Window::on`], every
    /// relation must be a registered stream with a declared event-time
    /// column. Equivalent to SQL's `WINDOW SLIDING/TUMBLING <n> [ON <col>]`.
    ///
    /// Combined with [`QueryBuilder::group_by`] (or aggregate SELECT
    /// items) the query aggregates **per window**: result rows are
    /// `(window_start, window_end, group…, agg…)` with both bounds
    /// inclusive — tumbling windows are the buckets
    /// `[k·width, (k+1)·width)`, sliding windows are every `[s, s+size]`
    /// containing all of a result's timestamps (adjacent windows overlap).
    /// Closed windows stream through the [`ResultSet`] iterator in window
    /// order while the topology runs.
    ///
    /// ```
    /// use squall::{col, count, Session, Window};
    /// use squall::common::{tuple, DataType, Schema};
    ///
    /// let schema = Schema::of(&[("ad_id", DataType::Int), ("ts", DataType::Int)]);
    /// let mut session = Session::builder().machines(2).build();
    /// session
    ///     .register_stream(
    ///         "impressions",
    ///         schema.clone(),
    ///         vec![tuple![1, 3], tuple![1, 17]],
    ///         "ts",
    ///     )
    ///     .unwrap()
    ///     .register_stream("clicks", schema, vec![tuple![1, 5], tuple![1, 12]], "ts")
    ///     .unwrap();
    /// let mut per_window = session
    ///     .from_as("impressions", "I")
    ///     .join_as("clicks", "C")
    ///     .on(col("I.ad_id").eq(col("C.ad_id")))
    ///     .window(Window::tumbling(10))
    ///     .group_by([col("I.ad_id")])
    ///     .select([col("I.ad_id"), count()])
    ///     .run()
    ///     .unwrap();
    /// // Bucket [0,10) pairs (1@3,1@5); bucket [10,20) pairs (1@17,1@12).
    /// assert_eq!(per_window.rows(), vec![tuple![0, 9, 1, 1], tuple![10, 19, 1, 1]]);
    /// ```
    pub fn window(mut self, window: Window) -> Self {
        self.window = Some(window);
        self
    }

    /// Append SELECT items (plain expressions or aggregate calls built
    /// with [`crate::count`] / [`crate::sum`] / [`crate::avg`] /
    /// [`squall_plan::logical::agg`]).
    pub fn select(mut self, items: impl IntoIterator<Item = Expr>) -> Self {
        self.select.extend(items.into_iter().map(|e| (e, None)));
        self
    }

    /// Append one named SELECT item (`expr AS name`).
    pub fn select_as(mut self, item: Expr, name: impl Into<String>) -> Self {
        self.select.push((item, Some(name.into())));
        self
    }

    /// Append an aggregate to the SELECT list
    /// (`.agg(AggFunc::Sum, Some(col("L.price")))`).
    pub fn agg(mut self, func: AggFunc, arg: Option<Expr>) -> Self {
        self.select.push((agg(func, arg), None));
        self
    }

    /// Append an ORDER BY key over the *output* columns (a SELECT alias or
    /// item display name); `desc = true` sorts descending. Equivalent to
    /// SQL's `ORDER BY <col> [ASC|DESC]`. Ties break on the full row, so
    /// ordered results are deterministic.
    pub fn order_by(mut self, column: impl Into<String>, desc: bool) -> Self {
        self.order_by.push(OrderKey { column: column.into(), desc });
        self
    }

    /// Keep only the first `n` rows of the (ordered) result — SQL's
    /// `LIMIT <n>`.
    pub fn limit(mut self, n: u64) -> Self {
        self.limit = Some(n);
        self
    }

    /// Lower to the logical [`Query`] block — the same structure
    /// `squall_sql::parse` yields, which is what guarantees SQL/imperative
    /// equivalence.
    pub fn build(self) -> Query {
        let mut select = self.select;
        if !self.group_by.is_empty() && select.iter().all(|(e, _)| e.has_agg()) {
            let mut full: Vec<(Expr, Option<String>)> =
                self.group_by.iter().cloned().map(|e| (e, None)).collect();
            full.append(&mut select);
            select = full;
        }
        let mut query = Query {
            tables: self.tables,
            filters: Vec::new(),
            select,
            group_by: self.group_by,
            having: Vec::new(),
            window: self.window,
            order_by: self.order_by,
            limit: self.limit,
        };
        for predicate in self.filters {
            query = query.filter(predicate);
        }
        for predicate in self.having {
            query = query.having(predicate);
        }
        query
    }

    /// Build and run, materializing the rows.
    pub fn run(self) -> Result<ResultSet> {
        let session = self.session;
        session.run(&self.build())
    }

    /// Build and run, streaming rows while the topology runs.
    pub fn stream(self) -> Result<ResultSet> {
        let session = self.session;
        session.run_stream(&self.build())
    }

    /// The optimized physical plan, as text.
    pub fn explain(self) -> Result<String> {
        let session = self.session;
        session.explain_query(&self.build())
    }

    /// Build and launch as a resident materialized view — the imperative
    /// twin of `CREATE MATERIALIZED VIEW <name> AS <select>`. See
    /// [`Session::create_view`].
    pub fn create_view(self, name: impl Into<String>) -> Result<crate::views::ViewHandle> {
        let session = self.session;
        session.create_view(name, &self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squall_common::{tuple, DataType};

    use squall_common::SquallError;

    fn session() -> Session {
        let mut s = Session::builder().machines(4).seed(42).build();
        s.register(
            "R",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
            vec![tuple![1, 10], tuple![2, 20], tuple![3, 30], tuple![2, 25]],
        )
        .unwrap();
        s.register(
            "S",
            Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]),
            vec![tuple![2, 100], tuple![3, 200], tuple![4, 300], tuple![2, 150]],
        )
        .unwrap();
        s
    }

    /// Two ad streams for the windowed-query tests.
    fn stream_session() -> Session {
        let schema = Schema::of(&[("ad_id", DataType::Int), ("ts", DataType::Int)]);
        let mut s = Session::builder().machines(3).seed(7).build();
        s.register_stream(
            "impressions",
            schema.clone(),
            vec![tuple![1, 0], tuple![2, 10], tuple![1, 40], tuple![2, 41]],
            "ts",
        )
        .unwrap();
        s.register_stream("clicks", schema, vec![tuple![1, 5], tuple![2, 39], tuple![1, 90]], "ts")
            .unwrap();
        s
    }

    #[test]
    fn builder_configures_session() {
        let s = Session::builder()
            .machines(9)
            .scheme(SchemeKind::Random)
            .local(LocalJoinKind::Traditional)
            .seed(3)
            .agg_parallelism(5)
            .skew_slack(0.75)
            .worker_threads(3)
            .batch_size(128)
            .build();
        assert_eq!(s.config().machines, 9);
        assert_eq!(s.config().scheme, Some(SchemeKind::Random));
        assert_eq!(s.config().local, LocalJoinKind::Traditional);
        assert_eq!(s.config().seed, 3);
        assert_eq!(s.config().agg_parallelism, 5);
        assert!((s.config().skew_slack - 0.75).abs() < 1e-12);
        assert_eq!(s.config().worker_threads, Some(3));
        assert_eq!(s.config().batch_size, 128);
    }

    #[test]
    fn worker_pool_and_batch_knobs_reach_the_runtime() {
        let mut small = Session::builder().machines(4).worker_threads(2).batch_size(1).build();
        std::mem::swap(small.catalog_mut(), session().catalog_mut());
        let query = "SELECT R.b, S.c FROM R, S WHERE R.a = S.a";
        let mut rs = small.sql(query).unwrap();
        let rows: Vec<Tuple> = rs.rows().to_vec();
        let report = rs.report().expect("distributed run");
        assert_eq!(report.scheduler.workers, 2, "pool size = worker_threads");
        // Identical rows under a different pool/batch configuration.
        let mut big = Session::builder().machines(4).worker_threads(8).batch_size(1024).build();
        std::mem::swap(big.catalog_mut(), session().catalog_mut());
        let mut rs2 = big.sql(query).unwrap();
        assert_eq!(rs2.rows(), rows, "executor config must not change results");
    }

    #[test]
    fn explain_prints_executor_config() {
        let s = session();
        let text = s.explain("SELECT S.c FROM R, S WHERE R.a = S.a").unwrap();
        assert!(text.contains("executor: 4 machines, auto worker threads"), "{text}");
        let tuned = Session::builder().machines(2).worker_threads(2).batch_size(16).build();
        let mut tuned = tuned;
        std::mem::swap(tuned.catalog_mut(), session().catalog_mut());
        let text = tuned.explain("SELECT S.c FROM R, S WHERE R.a = S.a").unwrap();
        assert!(text.contains("executor: 2 machines, 2 worker threads, batch size 16"), "{text}");
    }

    #[test]
    fn sql_and_imperative_agree() {
        let s = session();
        let mut sql = s.sql("SELECT R.b, S.c FROM R, S WHERE R.a = S.a AND R.b > 15").unwrap();
        let mut imp = s
            .from("R")
            .join("S")
            .on(col("R.a").eq(col("S.a")))
            .filter(col("R.b").gt(lit(15)))
            .select([col("R.b"), col("S.c")])
            .run()
            .unwrap();
        assert_eq!(sql.rows(), imp.rows());
        assert!(!sql.rows().is_empty());
        assert!(sql.report().is_some(), "distributed run reports metrics");
    }

    #[test]
    fn group_by_prepends_keys_when_only_aggs_selected() {
        let s = session();
        let q = s
            .from("R")
            .join("S")
            .on(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .agg(AggFunc::Count, None)
            .build();
        assert_eq!(q.select.len(), 2, "group key prepended");
        assert!(!q.select[0].0.has_agg());
        let mut sql = s.sql("SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a GROUP BY R.a").unwrap();
        let mut imp = s.run(&q).unwrap();
        assert_eq!(sql.rows(), imp.rows());
    }

    #[test]
    fn explicit_select_order_is_preserved() {
        let s = session();
        let q = s
            .from("R")
            .join("S")
            .on(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .select([count(), col("R.a")])
            .build();
        assert!(q.select[0].0.has_agg(), "explicit order untouched");
    }

    #[test]
    fn having_sql_and_builder_agree() {
        let s = session();
        let mut sql = s
            .sql(
                "SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a \
                 GROUP BY R.a HAVING COUNT(*) > 1",
            )
            .unwrap();
        let mut imp = s
            .from("R")
            .join("S")
            .on(col("R.a").eq(col("S.a")))
            .group_by([col("R.a")])
            .select([col("R.a"), count()])
            .having(count().gt(lit(1)))
            .run()
            .unwrap();
        // Groups: a=2 → 4 matches, a=3 → 1 match; only a=2 survives.
        assert_eq!(sql.rows(), vec![tuple![2, 4]]);
        assert_eq!(sql.rows(), imp.rows());
        // The streaming path filters identically.
        let mut st = s
            .sql_stream(
                "SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a \
                 GROUP BY R.a HAVING COUNT(*) > 1",
            )
            .unwrap();
        let mut streamed: Vec<Tuple> = st.by_ref().collect();
        streamed.sort();
        assert_eq!(streamed, vec![tuple![2, 4]]);
        // And explain mentions the predicate.
        let text = s
            .explain(
                "SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a GROUP BY R.a HAVING COUNT(*) > 1",
            )
            .unwrap();
        assert!(text.contains("having:"), "{text}");
    }

    #[test]
    fn having_hidden_aggregate_filters_without_projecting() {
        let s = session();
        // SUM(S.c) is only in HAVING: a=2 → 500, a=3 → 200.
        let mut rs = s
            .sql("SELECT R.a FROM R, S WHERE R.a = S.a GROUP BY R.a HAVING SUM(S.c) > 300")
            .unwrap();
        assert_eq!(rs.rows(), vec![tuple![2]]);
        assert_eq!(rs.schema().arity(), 1, "hidden aggregate is not projected");
    }

    #[test]
    fn order_by_limit_sql_and_builder_agree() {
        let s = session();
        let mut sql = s
            .sql("SELECT R.b AS b, S.c AS c FROM R, S WHERE R.a = S.a ORDER BY b DESC LIMIT 3")
            .unwrap();
        let mut imp = s
            .from("R")
            .join("S")
            .on(col("R.a").eq(col("S.a")))
            .select_as(col("R.b"), "b")
            .select_as(col("S.c"), "c")
            .order_by("b", true)
            .limit(3)
            .run()
            .unwrap();
        assert_eq!(sql.rows(), imp.rows());
        assert_eq!(sql.rows().len(), 3);
        // Descending on the first output column.
        let firsts: Vec<i64> = sql.rows().iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(firsts, sorted);
        // The streaming entry point honors the order contract by
        // materializing.
        let mut st = s
            .sql_stream("SELECT R.b AS b FROM R, S WHERE R.a = S.a ORDER BY b DESC LIMIT 2")
            .unwrap();
        assert!(!st.is_streaming());
        assert_eq!(st.rows().len(), 2);
    }

    #[test]
    fn streaming_multiset_equals_materialized_rows() {
        let s = session();
        let query = "SELECT R.b, S.c FROM R, S WHERE R.a = S.a";
        let mut streamed: Vec<Tuple> = Vec::new();
        let mut rs = s.sql_stream(query).unwrap();
        assert!(rs.is_streaming());
        for row in rs.by_ref() {
            streamed.push(row);
        }
        let report = rs.report().expect("metrics after exhaustion");
        assert!(report.error.is_none());
        streamed.sort();
        let mut materialized = s.sql(query).unwrap();
        assert_eq!(materialized.rows(), streamed);
    }

    #[test]
    fn explain_shows_plan_both_ways() {
        let s = session();
        let via_sql = s.explain("SELECT S.c FROM R, S WHERE R.a = S.a AND R.b > 15").unwrap();
        let via_builder = s
            .from("R")
            .join("S")
            .on(col("R.a").eq(col("S.a")))
            .filter(col("R.b").gt(lit(15)))
            .select([col("S.c")])
            .explain()
            .unwrap();
        assert_eq!(via_sql, via_builder);
        assert!(via_sql.contains("join atoms"));
        assert!(via_sql.contains("filter"));
    }

    #[test]
    fn named_select_items_set_output_schema() {
        let s = session();
        let mut rs = s
            .from("R")
            .join("S")
            .on(col("R.a").eq(col("S.a")))
            .select_as(sum(col("S.c")), "total")
            .run()
            .unwrap();
        assert_eq!(rs.schema().field(0).name, "total");
        assert_eq!(rs.rows().len(), 1);
    }

    #[test]
    fn config_mut_switches_scheme_between_runs() {
        let mut s = session();
        let sql = "SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a GROUP BY R.a";
        let mut expect = s.sql(sql).unwrap();
        for scheme in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
            s.config_mut().scheme = Some(scheme);
            let mut rs = s.sql(sql).unwrap();
            assert_eq!(rs.rows(), expect.rows(), "{scheme}");
        }
    }

    #[test]
    fn rows_after_iteration_returns_remainder_in_both_modes() {
        let s = session();
        let q = "SELECT R.b, S.c FROM R, S WHERE R.a = S.a";
        let mut materialized = s.sql(q).unwrap();
        let total = materialized.rows().len();
        assert!(total >= 2);
        let first = materialized.next().unwrap();
        assert_eq!(materialized.rows().len(), total - 1);
        assert!(!materialized.rows().contains(&first));
        let mut streaming = s.sql_stream(q).unwrap();
        let _ = streaming.next().unwrap();
        assert_eq!(streaming.rows().len(), total - 1);
        assert!(streaming.error().is_none());
    }

    #[test]
    fn dropping_a_live_stream_stops_the_run() {
        let s = session();
        let mut stream = s.sql_stream("SELECT R.b, S.c FROM R, S WHERE R.a = S.a").unwrap();
        let _ = stream.next();
        drop(stream); // must abort + join the topology, not leak threads
    }

    #[test]
    fn unknown_relation_is_reported() {
        let s = session();
        assert!(s.sql("SELECT Z.x FROM Z").is_err());
        assert!(s.from("Z").select([col("Z.x")]).run().is_err());
    }

    #[test]
    fn register_rejects_duplicates_and_bad_streams() {
        let mut s = session();
        let schema = Schema::of(&[("a", DataType::Int), ("ts", DataType::Int)]);
        // Duplicate names — across both kinds of source.
        assert!(matches!(
            s.register("R", schema.clone(), vec![]),
            Err(SquallError::DuplicateSource(_))
        ));
        assert!(matches!(
            s.register_stream("R", schema.clone(), vec![], "ts"),
            Err(SquallError::DuplicateSource(_))
        ));
        // Missing / non-Int event-time column.
        assert!(matches!(
            s.register_stream("E1", schema.clone(), vec![], "when"),
            Err(SquallError::InvalidSource { .. })
        ));
        let str_ts = Schema::of(&[("a", DataType::Int), ("ts", DataType::Str)]);
        assert!(matches!(
            s.register_stream("E2", str_ts, vec![], "ts"),
            Err(SquallError::InvalidSource { .. })
        ));
        assert!(matches!(
            s.register_stream("E3", schema.clone(), vec![tuple![1, -3]], "ts"),
            Err(SquallError::InvalidSource { .. })
        ));
        // Deregister frees the name for a replacement.
        assert!(s.deregister("R").unwrap());
        assert!(!s.deregister("R").unwrap(), "already gone");
        s.register("R", schema, vec![tuple![1, 2]]).unwrap();
    }

    #[test]
    fn deregister_refuses_sources_of_live_streams() {
        let mut s = session();
        let mut stream = s.sql_stream("SELECT R.b, S.c FROM R, S WHERE R.a = S.a").unwrap();
        assert!(stream.is_streaming());
        let first = stream.next();
        assert!(first.is_some());
        // Both sources are pinned while the run is live.
        assert!(matches!(
            s.deregister("R"),
            Err(SquallError::SourceInUse { source }) if source == "R"
        ));
        assert!(matches!(s.deregister("S"), Err(SquallError::SourceInUse { .. })));
        // Dropping the stream (aborting the run) releases them.
        drop(stream);
        assert!(s.deregister("R").unwrap());

        // Exhausting a stream releases too, even while rows stay readable.
        let mut s = session();
        let mut stream = s.sql_stream("SELECT R.b, S.c FROM R, S WHERE R.a = S.a").unwrap();
        while stream.next().is_some() {}
        assert!(s.deregister("S").unwrap());
        assert!(stream.error().is_none());

        // Materialized runs never pin: sql() completes before returning.
        let mut s = session();
        let mut rs = s.sql("SELECT R.b, S.c FROM R, S WHERE R.a = S.a").unwrap();
        assert!(!rs.rows().is_empty());
        assert!(s.deregister("R").unwrap());
    }

    #[test]
    fn windowed_sql_and_builder_agree() {
        let s = stream_session();
        // In-window pairs (|Δts| ≤ 30, same ad): (1@0,1@5), (2@10,2@39),
        // (1@40,1@5)? Δ=35 no — (2@41,2@39) yes, (1@40,1@90) Δ=50 no.
        let mut sql = s
            .sql(
                "SELECT I.ad_id, I.ts, C.ts FROM impressions I, clicks C \
                 WHERE I.ad_id = C.ad_id WINDOW SLIDING 30 ON ts",
            )
            .unwrap();
        let mut imp = s
            .from_as("impressions", "I")
            .join_as("clicks", "C")
            .on(col("I.ad_id").eq(col("C.ad_id")))
            .window(Window::sliding(30).on("ts"))
            .select([col("I.ad_id"), col("I.ts"), col("C.ts")])
            .run()
            .unwrap();
        assert_eq!(sql.rows(), vec![tuple![1, 0, 5], tuple![2, 10, 39], tuple![2, 41, 39]]);
        assert_eq!(sql.rows(), imp.rows());
    }

    #[test]
    fn window_defaults_to_declared_event_time_columns() {
        let s = stream_session();
        // No ON clause: the streams' declared `ts` columns are used.
        let mut with_on = s
            .sql(
                "SELECT I.ad_id FROM impressions I, clicks C \
                 WHERE I.ad_id = C.ad_id WINDOW TUMBLING 40 ON ts",
            )
            .unwrap();
        let mut without = s
            .sql(
                "SELECT I.ad_id FROM impressions I, clicks C \
                 WHERE I.ad_id = C.ad_id WINDOW TUMBLING 40",
            )
            .unwrap();
        assert_eq!(with_on.rows(), without.rows());
        // Tumbling width 40: buckets [0,40) and [40,80) — (1@40,1@5) and
        // (2@41,2@39) split across buckets, (1@0,1@5) and (2@10,2@39) join.
        assert_eq!(without.rows().len(), 2);
    }

    #[test]
    fn window_over_plain_tables_requires_on_clause() {
        let s = session(); // R and S are tables, not streams
        let err = s.sql("SELECT R.b FROM R, S WHERE R.a = S.a WINDOW SLIDING 5").unwrap_err();
        assert!(matches!(err, SquallError::InvalidPlan(_)), "{err}");
        // With an explicit Int column present in both relations it runs
        // (the window is measured on that column).
        let mut ok = s
            .from("R")
            .join("S")
            .on(col("R.a").eq(col("S.a")))
            .window(Window::sliding(1000).on("a"))
            .select([col("R.b"), col("S.c")])
            .run()
            .unwrap();
        assert!(!ok.rows().is_empty());
    }

    #[test]
    fn windowed_stream_consumes_while_running() {
        let s = stream_session();
        let mut rs = s
            .sql_stream(
                "SELECT I.ad_id, I.ts, C.ts FROM impressions I, clicks C \
                 WHERE I.ad_id = C.ad_id WINDOW SLIDING 30 ON ts",
            )
            .unwrap();
        assert!(rs.is_streaming());
        let mut streamed: Vec<Tuple> = rs.by_ref().collect();
        assert!(rs.report().expect("report after exhaustion").error.is_none());
        streamed.sort();
        assert_eq!(streamed, vec![tuple![1, 0, 5], tuple![2, 10, 39], tuple![2, 41, 39]]);
    }

    #[test]
    fn windowed_group_by_sql_and_builder_agree() {
        let s = stream_session();
        // Per-window GROUP BY: in-window pairs (|Δts| ≤ 30, same ad) are
        // (1@0,1@5), (2@10,2@39), (2@41,2@39); tumbling 40 buckets them
        // as [0,40) → (1@0,1@5), (2@10,2@39) and [40,80) → (2@41,2@39)…
        // except (2@10,2@39) shares bucket 0 and (2@41,2@39) straddles —
        // the engine's window predicate decides; SQL and builder must
        // simply agree and carry the window-bound columns.
        let sql_text = "SELECT I.ad_id, COUNT(*) FROM impressions I, clicks C \
                        WHERE I.ad_id = C.ad_id WINDOW TUMBLING 40 GROUP BY I.ad_id";
        let mut sql = s.sql(sql_text).unwrap();
        let mut imp = s
            .from_as("impressions", "I")
            .join_as("clicks", "C")
            .on(col("I.ad_id").eq(col("C.ad_id")))
            .window(Window::tumbling(40))
            .group_by([col("I.ad_id")])
            .select([col("I.ad_id"), count()])
            .run()
            .unwrap();
        // Bucket [0,40): (1@0,1@5) and (2@10,2@39).
        assert_eq!(sql.rows(), vec![tuple![0, 39, 1, 1], tuple![0, 39, 2, 1]]);
        assert_eq!(sql.rows(), imp.rows());
        assert_eq!(sql.schema().field(0).name, "window_start");
        assert_eq!(sql.schema().field(1).name, "window_end");
        // The streaming path yields the same rows, in window order.
        let mut st = s.sql_stream(sql_text).unwrap();
        let streamed: Vec<Tuple> = st.by_ref().collect();
        assert!(st.error().is_none());
        assert_eq!(streamed, vec![tuple![0, 39, 1, 1], tuple![0, 39, 2, 1]]);
        // EXPLAIN announces per-window aggregation (and the pinned task).
        let text = s.explain(sql_text).unwrap();
        assert!(text.contains("per window"), "{text}");
    }

    #[test]
    fn windowed_explain_mentions_window() {
        let s = stream_session();
        let text = s
            .explain(
                "SELECT I.ad_id FROM impressions I, clicks C \
                 WHERE I.ad_id = C.ad_id WINDOW SLIDING 30 ON ts",
            )
            .unwrap();
        assert!(text.contains("window"), "{text}");
    }

    /// Resident view snapshots observe every acked append/retract and
    /// match a full SELECT recompute byte-for-byte at every step.
    #[test]
    fn view_snapshots_read_their_writes() {
        let mut s = session();
        let select = "SELECT R.b, S.c FROM R, S WHERE R.a = S.a";
        let view = s.create_view("rs", &squall_sql::parse(select).unwrap()).unwrap();
        assert_eq!(view.snapshot().unwrap(), s.sql(select).unwrap().rows());
        s.append("R", vec![tuple![4, 40]]).unwrap();
        assert_eq!(view.snapshot().unwrap(), s.sql(select).unwrap().rows());
        s.retract("S", vec![tuple![2, 100]]).unwrap();
        s.append("S", vec![tuple![4, 400], tuple![1, 111]]).unwrap();
        assert_eq!(view.snapshot().unwrap(), s.sql(select).unwrap().rows());
        let stats = view.maintenance();
        assert!(stats.appends >= 2 && stats.retractions >= 1, "{stats}");
        let report = s.drop_view("rs").unwrap();
        let final_stats = report.maintenance.expect("drop report carries counters");
        assert!(final_stats.appends >= stats.appends, "{final_stats}");
        assert!(final_stats.snapshots >= 3, "{final_stats}");
    }

    /// DROP is refused while a change-stream subscriber is alive; the
    /// subscriber sees the net deltas of each applied epoch.
    #[test]
    fn drop_view_refuses_while_subscribed() {
        let mut s = session();
        let view = s
            .create_view("rs", &squall_sql::parse("SELECT R.b FROM R, S WHERE R.a = S.a").unwrap())
            .unwrap();
        let sub = view.subscribe();
        assert!(matches!(
            s.drop_view("rs"),
            Err(SquallError::ViewInUse { view }) if view == "rs"
        ));
        s.append("R", vec![tuple![4, 40]]).unwrap();
        s.append("S", vec![tuple![4, 999]]).unwrap();
        view.snapshot().unwrap();
        let got: Vec<_> = std::iter::from_fn(|| sub.try_recv()).collect();
        assert!(
            got.iter().any(|b| b.changes.iter().any(|(t, m)| *t == tuple![40] && *m == 1)),
            "subscriber observed the new join row: {got:?}"
        );
        drop(sub);
        assert!(s.drop_view("rs").is_ok());
        assert!(s.view("rs").is_err(), "dropped view is gone");
    }

    /// A source cannot be deregistered while a resident view reads it.
    #[test]
    fn deregister_refuses_source_read_by_view() {
        let mut s = session();
        s.create_view("rs", &squall_sql::parse("SELECT R.b FROM R, S WHERE R.a = S.a").unwrap())
            .unwrap();
        assert!(matches!(
            s.deregister("R"),
            Err(SquallError::SourceInUse { source }) if source == "R"
        ));
        s.drop_view("rs").unwrap();
        assert!(s.deregister("R").unwrap());
    }

    /// The SQL front door: CREATE returns the initial snapshot, DROP
    /// returns the maintenance report, and explain lists resident views.
    #[test]
    fn sql_create_and_drop_materialized_view() {
        let mut s = session();
        let mut created = s
            .sql("CREATE MATERIALIZED VIEW v AS SELECT R.b, S.c FROM R, S WHERE R.a = S.a")
            .unwrap();
        assert_eq!(
            created.rows(),
            s.sql("SELECT R.b, S.c FROM R, S WHERE R.a = S.a").unwrap().rows()
        );
        assert!(matches!(
            s.sql("CREATE MATERIALIZED VIEW v AS SELECT R.b FROM R"),
            Err(SquallError::DuplicateSource(_))
        ));
        s.append("R", vec![tuple![2, 22]]).unwrap();
        let text = s.explain("SELECT R.b FROM R").unwrap();
        assert!(text.contains("resident view v"), "{text}");
        assert!(text.contains("maintenance:"), "{text}");
        let mut dropped = s.sql("DROP MATERIALIZED VIEW v").unwrap();
        let report = dropped.report().expect("drop returns the view's report");
        assert!(report.maintenance.is_some(), "{report:?}");
        assert!(matches!(s.sql("DROP MATERIALIZED VIEW v"), Err(SquallError::UnknownRelation(_))));
        let text = s.explain("SELECT R.b FROM R").unwrap();
        assert!(!text.contains("resident view"), "{text}");
    }

    /// Aggregate views maintain GROUP BY state incrementally, including
    /// group birth and death under retraction.
    #[test]
    fn aggregate_view_tracks_group_changes() {
        let mut s = session();
        let select = "SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a GROUP BY R.a";
        let view = s.create_view("counts", &squall_sql::parse(select).unwrap()).unwrap();
        assert_eq!(view.snapshot().unwrap(), s.sql(select).unwrap().rows());
        // Births a brand-new group (a=4 joins nothing yet, then S gains 4).
        s.append("S", vec![tuple![4, 1]]).unwrap();
        s.append("R", vec![tuple![4, 44]]).unwrap();
        assert_eq!(view.snapshot().unwrap(), s.sql(select).unwrap().rows());
        // Kills the group again.
        s.retract("R", vec![tuple![4, 44]]).unwrap();
        assert_eq!(view.snapshot().unwrap(), s.sql(select).unwrap().rows());
        s.drop_view("counts").unwrap();
    }

    /// Stream sources stay append-only under views: retract is refused,
    /// appends must respect event time.
    #[test]
    fn stream_sources_are_append_only_for_views() {
        let mut s = stream_session();
        let err = s.retract("clicks", vec![tuple![1, 5]]).unwrap_err();
        assert!(matches!(err, SquallError::InvalidSource { .. }), "{err}");
        let err = s.append("clicks", vec![tuple![9, 1]]).unwrap_err();
        assert!(matches!(err, SquallError::InvalidSource { .. }), "late event: {err}");
        s.append("clicks", vec![tuple![2, 95]]).unwrap();
    }
}
