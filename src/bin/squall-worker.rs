//! `squall-worker` — join a Squall cluster.
//!
//! A worker binds a TCP listener and serves distributed query jobs: for
//! each job it receives the serialized plan from the coordinator, rebuilds
//! the identical topology, hosts its assigned task range on its own
//! cooperative worker pool, exchanges batches with its peers over TCP,
//! and reports its metrics when the run drains.
//!
//! ```text
//! squall-worker --listen 127.0.0.1:7401          # serve jobs forever
//! squall-worker --listen 127.0.0.1:0 --once      # ephemeral port, one job
//! ```
//!
//! The bound address is printed as `LISTENING <addr>` on stdout before the
//! first job is accepted, so spawners can use port 0 and discover the
//! ephemeral port. Point a session at the workers with
//! `Session::builder().cluster(["<addr>", ...])`.

use std::io::Write;

fn usage() -> ! {
    eprintln!("usage: squall-worker [--listen <addr>] [--once]");
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--once" => once = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if let Err(e) = squall::engine::cluster::run_worker(&listen, once, |addr| {
        println!("LISTENING {addr}");
        std::io::stdout().flush().ok();
    }) {
        eprintln!("squall-worker: {e}");
        std::process::exit(1);
    }
}
