//! # Squall: Scalable Real-time Analytics — Rust reproduction
//!
//! A from-scratch Rust implementation of the system described in
//! *Squall: Scalable Real-time Analytics* (Vitorovic et al., PVLDB 9(10),
//! 2016): an online distributed query engine with skew-resilient, adaptive
//! join operators.
//!
//! The facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`common`] | values, tuples, schemas, hashing, RNG, zipf |
//! | [`expr`] | scalar expressions, join conditions, multi-way join specs |
//! | [`runtime`] | the Storm-substitute: topologies, spouts/bolts, groupings |
//! | [`partition`] | Hash-/Random-/**Hybrid**-Hypercube, 1-Bucket, M-Bucket, EWH, adaptive resizing |
//! | [`join`] | traditional & DBToaster local joins, aggregates, windows, spill |
//! | [`engine`] | HyLD operator, execution driver, pipelines, recovery |
//! | [`plan`] | logical plans, optimizer, executor (the functional interface) |
//! | [`sql`] | the SQL interface |
//! | [`data`] | TPC-H / WebGraph / Google-cluster workload generators |
//!
//! ## Quickstart
//!
//! ```
//! use squall::plan::{Catalog, ExecConfig};
//! use squall::common::{tuple, DataType, Schema};
//!
//! let mut catalog = Catalog::new();
//! catalog.register(
//!     "R",
//!     Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
//!     vec![tuple![1, 10], tuple![2, 20]],
//! );
//! catalog.register(
//!     "S",
//!     Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]),
//!     vec![tuple![2, 7], tuple![3, 8]],
//! );
//! let q = squall::sql::parse("SELECT R.b, S.c FROM R, S WHERE R.a = S.a").unwrap();
//! let result = squall::plan::physical::execute_query(&q, &catalog, &ExecConfig::default()).unwrap();
//! assert_eq!(result.rows, vec![tuple![20, 7]]);
//! ```

pub use squall_common as common;
pub use squall_core as engine;
pub use squall_data as data;
pub use squall_expr as expr;
pub use squall_join as join;
pub use squall_partition as partition;
pub use squall_plan as plan;
pub use squall_runtime as runtime;
pub use squall_sql as sql;
