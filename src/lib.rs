//! # Squall: Scalable Real-time Analytics — Rust reproduction
//!
//! A from-scratch Rust implementation of the system described in
//! *Squall: Scalable Real-time Analytics* (Vitorovic et al., PVLDB 9(10),
//! 2016): an online distributed query engine with skew-resilient, adaptive
//! join operators.
//!
//! The single entry point is [`Session`]: it owns the catalog and the
//! execution configuration, and runs queries through either of the
//! paper's two interfaces (§2) — SQL ([`Session::sql`]) or the fluent
//! imperative builder ([`Session::from`]) — both lowering to the same
//! logical plan, optimizer and skew-resilient multi-way join runtime.
//! Results come back as a [`ResultSet`]: materialized rows, a streaming
//! row iterator, and the run's [`session::JoinReport`] metrics.
//!
//! The facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |---|---|
//! | [`session`] | **the unified API**: `Session`, `QueryBuilder`, `ResultSet` |
//! | [`common`] | values, tuples, schemas, hashing, RNG, zipf |
//! | [`expr`] | scalar expressions, join conditions, multi-way join specs |
//! | [`runtime`] | the Storm-substitute: topologies, spouts/bolts, groupings |
//! | [`partition`] | Hash-/Random-/**Hybrid**-Hypercube, 1-Bucket, M-Bucket, EWH, adaptive resizing |
//! | [`join`] | traditional & DBToaster local joins, aggregates, windows, spill |
//! | [`engine`] | HyLD operator, execution driver, pipelines, recovery |
//! | [`plan`] | logical plans, optimizer, executor (the functional interface) |
//! | [`sql`] | the SQL interface |
//! | [`data`] | TPC-H / WebGraph / Google-cluster workload generators |
//!
//! ## Quickstart
//!
//! ```
//! use squall::{col, Session};
//! use squall::common::{tuple, DataType, Schema};
//!
//! let mut session = Session::builder().machines(4).build();
//! session.register(
//!     "R",
//!     Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
//!     vec![tuple![1, 10], tuple![2, 20]],
//! ).unwrap();
//! session.register(
//!     "S",
//!     Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]),
//!     vec![tuple![2, 7], tuple![3, 8]],
//! ).unwrap();
//! let mut result = session.sql("SELECT R.b, S.c FROM R, S WHERE R.a = S.a").unwrap();
//! assert_eq!(result.rows(), vec![tuple![20, 7]]);
//! // The imperative interface lowers to the same plan:
//! let same = session.from("R").join("S").on(col("R.a").eq(col("S.a")));
//! let mut result2 = same.select([col("R.b"), col("S.c")]).run().unwrap();
//! assert_eq!(result2.rows(), result.rows());
//! ```

#![deny(missing_docs)]

pub mod session;
pub mod views;

pub use squall_common as common;
pub use squall_core as engine;
pub use squall_data as data;
pub use squall_expr as expr;
pub use squall_join as join;
pub use squall_partition as partition;
pub use squall_plan as plan;
pub use squall_runtime as runtime;
pub use squall_sql as sql;

pub use session::{
    agg, avg, col, count, lit, sum, AggFunc, ClusterSpec, ColumnStats, ExecConfig, LocalJoinKind,
    OptimizerMode, QueryBuilder, ResultSet, SchemeKind, Session, SessionBuilder, SourceDef,
    SourceKind, TableStats, Window, WindowKind,
};
pub use squall_core::driver::MaintenanceStats;
pub use squall_core::standing::ChangeBatch;
pub use views::{ViewHandle, ViewSubscription};
