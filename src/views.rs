//! Standing queries: **resident materialized views** over live sources.
//!
//! `CREATE MATERIALIZED VIEW <name> AS <query>` (or
//! [`Session::create_view`] / [`crate::QueryBuilder::create_view`])
//! launches the query's topology once and keeps it resident: the spouts
//! become live queues, every [`Session::append`] /
//! [`Session::retract`] on a source the view reads is transformed by the
//! view's pushed-down plan and propagated through the distributed join
//! as a signed delta, and the view's rows are maintained incrementally —
//! never recomputed. The [`ViewHandle`] returned by
//! [`Session::create_view`] / [`Session::view`] serves two read paths:
//!
//! * [`ViewHandle::snapshot`] — a consistent, read-your-writes snapshot:
//!   it waits until every acked append/retract epoch is applied, then
//!   returns the rows exactly as the defining SELECT would (sorted like
//!   [`Session::sql`] results, so snapshot and recompute compare
//!   byte-for-byte);
//! * [`ViewHandle::subscribe`] — the change stream: one batch of net
//!   `(row, ±count)` changes per epoch that changed the view.
//!
//! `DROP MATERIALIZED VIEW` ([`Session::drop_view`]) closes the live
//! queues and drains the topology's shutdown cascade, returning the
//! view's lifetime [`JoinReport`] with per-view maintenance counters in
//! [`JoinReport::maintenance`]. Dropping is refused with a typed
//! [`SquallError::ViewInUse`] while a subscriber still holds the change
//! stream, and [`Session::deregister`] refuses (typed
//! [`SquallError::SourceInUse`]) while a resident view reads the source.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use squall_common::{FxHashMap, Result, Schema, SquallError, Tuple};
use squall_core::standing::{launch_standing, ChangeBatch, StandingHandle, ViewShared};
use squall_plan::physical::{ExecConfig, PhysicalQuery, StandingPlan};

use crate::session::{JoinReport, Query, Session};

/// How long a snapshot waits for the topology to quiesce before giving
/// up. Generous: an epoch's application is bounded by in-flight work,
/// not by external events — hitting this means the topology died without
/// raising an error.
const SNAPSHOT_TIMEOUT: Duration = Duration::from_secs(30);

/// One resident view: the physical plan (for delta transformation), the
/// running standing topology, and the shared row state.
pub(crate) struct ResidentView {
    name: String,
    plan: PhysicalQuery,
    /// `None` only transiently during [`Session::drop_view`] (the
    /// shutdown consumes the handle) and after a failed drop.
    handle: Mutex<Option<StandingHandle>>,
    shared: Arc<ViewShared>,
    /// Live [`ViewSubscription`]s; dropping the view is refused while
    /// any exist.
    subscribers: Arc<AtomicUsize>,
    /// Source names this view reads (deduplicated).
    sources: Vec<String>,
    schema: Schema,
}

impl Drop for ResidentView {
    fn drop(&mut self) {
        // A view leaving the registry without an explicit DROP (session
        // teardown) must still close its queues: the resident spouts are
        // parked and would otherwise keep the worker pool alive forever.
        if let Some(h) = self.handle.lock().expect("view handle poisoned").take() {
            let _ = h.shutdown();
        }
    }
}

/// Resident views of a session, shared across session clones.
#[derive(Clone, Default)]
pub(crate) struct ViewRegistry {
    inner: Arc<Mutex<FxHashMap<String, Arc<ResidentView>>>>,
}

impl std::fmt::Debug for ViewRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let views = self.inner.lock().expect("view registry poisoned");
        let mut names: Vec<&String> = views.keys().collect();
        names.sort();
        f.debug_tuple("ViewRegistry").field(&names).finish()
    }
}

impl ViewRegistry {
    fn lock(&self) -> std::sync::MutexGuard<'_, FxHashMap<String, Arc<ResidentView>>> {
        self.inner.lock().expect("view registry poisoned")
    }

    /// Does any resident view read this source?
    pub(crate) fn reads_source(&self, name: &str) -> bool {
        self.lock().values().any(|v| v.sources.iter().any(|s| s == name))
    }

    /// Propagate one signed source mutation (already catalog-validated)
    /// into every resident view reading the source. Each view transforms
    /// the rows through its own pushed-down plan, once per alias of the
    /// source in its FROM clause (a self-join gets one delta per alias).
    pub(crate) fn apply_delta(&self, source: &str, rows: &[Tuple], mult: i64) -> Result<()> {
        let views: Vec<Arc<ResidentView>> = self.lock().values().cloned().collect();
        for view in views {
            let tables = view.plan.source_tables();
            let mut rounds = Vec::new();
            for (t, (name, _alias)) in tables.iter().enumerate() {
                if *name != source {
                    continue;
                }
                let transformed = view.plan.transform_source_rows(t, rows)?;
                if !transformed.is_empty() {
                    rounds.push((t, transformed, mult));
                }
            }
            if rounds.is_empty() {
                continue;
            }
            let mut handle = view.handle.lock().expect("view handle poisoned");
            let Some(h) = handle.as_mut() else { continue };
            h.apply(rounds)?;
        }
        Ok(())
    }

    /// The `explain` section describing every resident view.
    pub(crate) fn describe(&self, config: &ExecConfig) -> String {
        let views = self.lock();
        if views.is_empty() {
            return String::new();
        }
        let mut names: Vec<&String> = views.keys().collect();
        names.sort();
        let mut text = String::new();
        for name in names {
            let v = &views[name];
            let handle = v.handle.lock().expect("view handle poisoned");
            let (scheme, n_rel) = match handle.as_ref() {
                Some(h) => (h.scheme_description().to_string(), h.n_relations()),
                None => ("shutting down".to_string(), v.sources.len()),
            };
            drop(handle);
            let placement = match &config.cluster {
                Some(c) => format!("coordinator + {} workers over TCP", c.workers.len()),
                None => "in-process".to_string(),
            };
            text.push_str(&format!(
                "resident view {name}: {n_rel} delta sources -> join[{scheme}] -> \
                 view sink ({placement})\n  sources: {}\n  maintenance: {}\n",
                v.sources.join(", "),
                v.shared.stats(),
            ));
        }
        text
    }
}

impl Session {
    /// Launch a query as a **resident materialized view** — the
    /// imperative twin of `CREATE MATERIALIZED VIEW <name> AS <select>`.
    ///
    /// The topology loads the current source contents as its first
    /// epoch and then stays up: every [`Session::append`] /
    /// [`Session::retract`] on a source the view reads propagates
    /// through the distributed join as signed deltas, maintaining the
    /// view incrementally. The view name is its own namespace (distinct
    /// from sources); duplicates are rejected.
    ///
    /// ```
    /// use squall::Session;
    /// use squall::common::{tuple, DataType, Schema};
    ///
    /// let mut session = Session::builder().machines(2).build();
    /// let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
    /// session.register("R", schema.clone(), vec![tuple![1, 10]]).unwrap();
    /// session.register("S", schema, vec![tuple![1, 7]]).unwrap();
    /// session
    ///     .sql("CREATE MATERIALIZED VIEW v AS SELECT R.b, S.b FROM R, S WHERE R.a = S.a")
    ///     .unwrap();
    /// session.append("S", vec![tuple![1, 8]]).unwrap();
    /// let view = session.view("v").unwrap();
    /// assert_eq!(view.snapshot().unwrap(), vec![tuple![10, 7], tuple![10, 8]]);
    /// session.sql("DROP MATERIALIZED VIEW v").unwrap();
    /// ```
    pub fn create_view(&self, name: impl Into<String>, query: &Query) -> Result<ViewHandle> {
        let name = name.into();
        {
            let views = self.views.lock();
            if views.contains_key(&name) {
                return Err(SquallError::DuplicateSource(format!(
                    "materialized view {name} already exists"
                )));
            }
        }
        let plan = PhysicalQuery::plan(query, &self.catalog)?;
        let StandingPlan { spec, data, mcfg, view } =
            plan.prepare_standing(&self.catalog, &self.config)?;
        let shared = Arc::new(ViewShared::new());
        let handle = launch_standing(&spec, data, &mcfg, view, Arc::clone(&shared))?;
        let mut sources: Vec<String> = query.tables.iter().map(|(t, _)| t.clone()).collect();
        sources.sort();
        sources.dedup();
        let schema = plan.output_schema().clone();
        let resident = Arc::new(ResidentView {
            name: name.clone(),
            plan,
            handle: Mutex::new(Some(handle)),
            shared,
            subscribers: Arc::new(AtomicUsize::new(0)),
            sources,
            schema,
        });
        let mut views = self.views.lock();
        if views.contains_key(&name) {
            // Lost a create-create race; the drop closes our topology.
            return Err(SquallError::DuplicateSource(format!(
                "materialized view {name} already exists"
            )));
        }
        views.insert(name, Arc::clone(&resident));
        Ok(ViewHandle { inner: resident })
    }

    /// A handle to an existing resident view.
    pub fn view(&self, name: &str) -> Result<ViewHandle> {
        let views = self.views.lock();
        match views.get(name) {
            Some(v) => Ok(ViewHandle { inner: Arc::clone(v) }),
            None => Err(SquallError::UnknownRelation(format!("materialized view {name}"))),
        }
    }

    /// Names of the session's resident views, sorted.
    pub fn view_names(&self) -> Vec<String> {
        let views = self.views.lock();
        let mut names: Vec<String> = views.keys().cloned().collect();
        names.sort();
        names
    }

    /// Tear a resident view down — `DROP MATERIALIZED VIEW <name>`. The
    /// live source queues close, the topology drains its shutdown
    /// cascade (locally and on cluster workers alike), and the view's
    /// lifetime [`JoinReport`] — including the maintenance counters in
    /// [`JoinReport::maintenance`] — is returned.
    ///
    /// Refused with a typed [`SquallError::ViewInUse`] while a
    /// [`ViewSubscription`] to the change stream is still alive: a
    /// subscriber silently losing its feed mid-read is exactly the bug
    /// the guard exists to surface. Drop the subscription first.
    pub fn drop_view(&self, name: &str) -> Result<JoinReport> {
        let mut views = self.views.lock();
        let Some(view) = views.get(name) else {
            return Err(SquallError::UnknownRelation(format!("materialized view {name}")));
        };
        if view.subscribers.load(Ordering::SeqCst) > 0 {
            return Err(SquallError::ViewInUse { view: name.to_string() });
        }
        let view = views.remove(name).expect("present above");
        drop(views);
        let handle = view.handle.lock().expect("view handle poisoned").take();
        match handle {
            Some(h) => Ok(h.shutdown()),
            None => Err(SquallError::Runtime(format!(
                "materialized view {name} is already shutting down"
            ))),
        }
    }
}

/// A reader's handle to one resident materialized view. Cheap to clone
/// (via [`Session::view`]); the view itself lives in the session's
/// registry until `DROP MATERIALIZED VIEW`.
pub struct ViewHandle {
    inner: Arc<ResidentView>,
}

impl std::fmt::Debug for ViewHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewHandle").field("name", &self.inner.name).finish()
    }
}

impl ViewHandle {
    /// The view's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The view's output schema (the defining SELECT's).
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// A consistent snapshot of the view: waits until every acked
    /// append/retract is applied (read-your-writes), then returns the
    /// rows sorted exactly like the defining SELECT's materialized
    /// results — so a snapshot compares byte-for-byte against a full
    /// recompute. Fails with the topology's error if the resident run
    /// has died.
    pub fn snapshot(&self) -> Result<Vec<Tuple>> {
        let handle = self.inner.handle.lock().expect("view handle poisoned");
        let Some(h) = handle.as_ref() else {
            return Err(SquallError::Runtime(format!(
                "materialized view {} is shutting down",
                self.inner.name
            )));
        };
        let mut rows = h.snapshot(SNAPSHOT_TIMEOUT)?;
        drop(handle);
        rows.sort();
        Ok(rows)
    }

    /// Subscribe to the view's change stream: one [`ChangeBatch`] of net
    /// `(row, ±count)` changes per epoch that changed the view, in epoch
    /// order, starting with epochs applied after this call. While the
    /// subscription is alive, [`Session::drop_view`] refuses with
    /// [`SquallError::ViewInUse`].
    pub fn subscribe(&self) -> ViewSubscription {
        let handle = self.inner.handle.lock().expect("view handle poisoned");
        let rx = match handle.as_ref() {
            Some(h) => h.subscribe(),
            // Shutting down: an always-empty channel.
            None => std::sync::mpsc::channel().1,
        };
        drop(handle);
        self.inner.subscribers.fetch_add(1, Ordering::SeqCst);
        ViewSubscription { rx, subscribers: Arc::clone(&self.inner.subscribers) }
    }

    /// Highest epoch issued to the view so far (the initial load is
    /// epoch 1; every append/retract round bumps it).
    pub fn epoch(&self) -> u64 {
        let handle = self.inner.handle.lock().expect("view handle poisoned");
        handle.as_ref().map(|h| h.issued_epoch()).unwrap_or(0)
    }

    /// Current maintenance counters (appends, retractions, deltas into
    /// the sink, epochs applied, row changes, snapshots served). The
    /// same numbers end up in [`JoinReport::maintenance`] at drop time.
    pub fn maintenance(&self) -> squall_core::driver::MaintenanceStats {
        self.inner.shared.stats()
    }

    /// The error that killed the resident run, if it has died. A healthy
    /// view returns `None`.
    pub fn error(&self) -> Option<SquallError> {
        let handle = self.inner.handle.lock().expect("view handle poisoned");
        handle.as_ref().and_then(|h| h.error())
    }

    /// Restart a clustered view after a worker loss, re-admitting the
    /// given worker set (surviving peers plus replacements — any mix of
    /// old and new `squall-worker` addresses).
    ///
    /// The topology is torn down, operator state is restored from the
    /// last complete checkpoint — reconstructing a lost peer's join
    /// blobs from surviving replicas first when the partitioning scheme
    /// replicates (§5) — and every acked epoch since that checkpoint is
    /// replayed from the coordinator's buffer. Epoch deduplication at
    /// the view sink makes the replay exactly-once: a post-recovery
    /// [`ViewHandle::snapshot`] equals the no-failure run's snapshot.
    ///
    /// Only meaningful on a clustered session; an in-process view
    /// returns a typed error. Subscribers and the shared row state
    /// survive the restart.
    pub fn recover<I, S>(&self, workers: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut handle = self.inner.handle.lock().expect("view handle poisoned");
        let Some(h) = handle.as_mut() else {
            return Err(SquallError::Runtime(format!(
                "materialized view {} is shutting down",
                self.inner.name
            )));
        };
        h.recover(squall_core::ClusterSpec::new(workers))
    }
}

/// A live subscription to a view's change stream (see
/// [`ViewHandle::subscribe`]). Iterate or [`ViewSubscription::recv`] to
/// consume batches; drop it to release the view for
/// `DROP MATERIALIZED VIEW`.
pub struct ViewSubscription {
    rx: Receiver<ChangeBatch>,
    subscribers: Arc<AtomicUsize>,
}

impl ViewSubscription {
    /// Blocking receive of the next change batch; `None` once the view
    /// has shut down and all pending batches are consumed.
    pub fn recv(&self) -> Option<ChangeBatch> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<ChangeBatch> {
        self.rx.try_recv().ok()
    }
}

impl Drop for ViewSubscription {
    fn drop(&mut self) {
        self.subscribers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Iterator for ViewSubscription {
    type Item = ChangeBatch;

    fn next(&mut self) -> Option<ChangeBatch> {
        self.recv()
    }
}
