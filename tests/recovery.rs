//! Checkpoint & recovery end-to-end: resident materialized views that
//! survive `kill -9` of a worker process.
//!
//! Each test spawns real long-lived `squall-worker` children (no
//! `--once` — a worker whose job dies goes back to accepting, which is
//! what re-admission relies on), SIGKILLs one mid-run, waits for the
//! coordinator's heartbeat/EOF detection to surface a typed
//! [`SquallError::WorkerLost`], re-admits a fresh worker set via
//! [`squall::ViewHandle::recover`], and checks the exactly-once
//! contract: the post-recovery snapshot equals the no-failure
//! recompute byte-for-byte, before and after further mutations. The
//! property test drives the same scenario over random append/retract
//! interleavings.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use squall::common::{tuple, DataType, Schema, SplitMix64, SquallError, Tuple};
use squall::{Session, SessionBuilder, ViewHandle};

/// One long-lived `squall-worker` child on an ephemeral port.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn() -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_squall-worker"))
            .args(["--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn squall-worker");
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected worker banner: {line:?}"))
            .to_string();
        Worker { child, addr }
    }

    /// SIGKILL — no drop handlers, no goodbyes, exactly the failure the
    /// checkpoint subsystem exists for.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Poll until the resident run dies with a typed error (detection is
/// heartbeat/EOF driven, so it lands within a timeout, not instantly).
fn await_worker_lost(view: &ViewHandle) -> SquallError {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Some(e) = view.error() {
            return e;
        }
        assert!(Instant::now() < deadline, "worker loss was never detected");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The full-recompute oracle, always in-process: what a no-failure run
/// of the view's SELECT returns on the session's current catalog.
fn recompute(s: &Session, select: &str) -> Vec<Tuple> {
    let mut local = s.clone();
    local.config_mut().cluster = None;
    local.sql(select).unwrap().rows().to_vec()
}

/// R(a, b) ⋈ S(b, c) ⋈ T(c, d) with small key domains.
fn chain_session(builder: SessionBuilder) -> Session {
    let mut s = builder.build();
    s.register(
        "R",
        Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
        vec![tuple![1, 10], tuple![2, 10], tuple![2, 20], tuple![3, 30]],
    )
    .unwrap();
    s.register(
        "S",
        Schema::of(&[("b", DataType::Int), ("c", DataType::Int)]),
        vec![tuple![10, 100], tuple![20, 100], tuple![20, 200]],
    )
    .unwrap();
    s.register(
        "T",
        Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]),
        vec![tuple![100, 7], tuple![200, 8], tuple![200, 9]],
    )
    .unwrap();
    s
}

const CHAIN_VIEW: &str = "SELECT R.a, COUNT(*) FROM R, S, T \
                          WHERE R.b = S.b AND S.c = T.c GROUP BY R.a";

/// The acceptance scenario: a 3-way join + GROUP BY view across two
/// worker processes; one worker is SIGKILLed mid-run; after
/// re-admission of a replacement the snapshot is byte-identical to the
/// no-failure recompute and the view keeps maintaining.
#[test]
fn three_way_group_by_view_survives_kill_dash_nine() {
    let mut w0 = Worker::spawn();
    let w1 = Worker::spawn();
    let mut s = chain_session(
        Session::builder()
            .machines(4)
            .seed(11)
            .cluster([w0.addr.clone(), w1.addr.clone()])
            .checkpoint_interval(2)
            .heartbeat_timeout_ms(400),
    );
    s.sql(&format!("CREATE MATERIALIZED VIEW counts AS {CHAIN_VIEW}")).unwrap();
    let view = s.view("counts").unwrap();

    // Mutations straddling a checkpoint boundary (interval 2: epochs 2
    // and 4 checkpoint; epoch 5's retraction exists only in the replay
    // buffer at failure time).
    s.append("R", vec![tuple![4, 20], tuple![1, 20]]).unwrap();
    s.append("S", vec![tuple![30, 200]]).unwrap();
    s.append("T", vec![tuple![100, 11]]).unwrap();
    s.retract("R", vec![tuple![2, 10]]).unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, CHAIN_VIEW), "before failure");

    w0.kill();
    let err = await_worker_lost(&view);
    match &err {
        SquallError::WorkerLost { addr, .. } => {
            assert!(addr.contains("127.0.0.1"), "lost peer is identified: {addr}")
        }
        other => panic!("expected WorkerLost, got {other}"),
    }

    // Re-admit: one fresh replacement plus the surviving worker (back in
    // its accept loop after its job died).
    let w2 = Worker::spawn();
    view.recover([w2.addr.clone(), w1.addr.clone()]).unwrap();
    assert!(view.error().is_none(), "recovered run is healthy");
    assert_eq!(view.snapshot().unwrap(), recompute(&s, CHAIN_VIEW), "post-recovery snapshot");

    // The recovered view keeps maintaining incrementally.
    s.append("R", vec![tuple![5, 20]]).unwrap();
    s.retract("S", vec![tuple![30, 200]]).unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, CHAIN_VIEW), "after post-recovery rounds");

    let report = s.drop_view("counts").unwrap();
    let stats = report.maintenance.expect("standing report carries counters");
    assert!(stats.checkpoints >= 1, "at least one aligned checkpoint completed: {stats}");
    assert_eq!(stats.recoveries, 1, "{stats}");
}

/// A failure *before the first checkpoint completes* falls back to the
/// initial load + full replay path (no complete checkpoint exists yet)
/// and still converges to the oracle.
#[test]
fn failure_before_first_checkpoint_replays_from_initial_load() {
    let mut w0 = Worker::spawn();
    let w1 = Worker::spawn();
    let mut s = chain_session(
        Session::builder()
            .machines(3)
            .seed(7)
            .cluster([w0.addr.clone(), w1.addr.clone()])
            .checkpoint_interval(1000) // never reached
            .heartbeat_timeout_ms(400),
    );
    s.sql(&format!("CREATE MATERIALIZED VIEW counts AS {CHAIN_VIEW}")).unwrap();
    let view = s.view("counts").unwrap();
    s.append("R", vec![tuple![4, 20]]).unwrap();
    s.retract("S", vec![tuple![20, 200]]).unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, CHAIN_VIEW), "before failure");

    w0.kill();
    assert!(matches!(await_worker_lost(&view), SquallError::WorkerLost { .. }));
    let w2 = Worker::spawn();
    view.recover([w2.addr.clone(), w1.addr.clone()]).unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, CHAIN_VIEW), "post-recovery snapshot");
    let report = s.drop_view("counts").unwrap();
    let stats = report.maintenance.expect("standing report carries counters");
    assert!(stats.checkpoints == 0, "no checkpoint ever completed: {stats}");
    assert!(stats.replayed_epochs >= 1, "replay was deduplicated at the sink: {stats}");
}

/// One random mutation per step: append a random row to R or S, or
/// retract a random still-present base row.
fn random_step(rng: &mut SplitMix64, s: &mut Session, shadow: &mut [Vec<Tuple>; 2], dom: i64) {
    let rel = rng.next_range(0, 1) as usize;
    let name = ["R", "S"][rel];
    let retract_ok = !shadow[rel].is_empty();
    if retract_ok && rng.next_range(0, 2) == 0 {
        let idx = rng.next_range(0, shadow[rel].len() as i64 - 1) as usize;
        let row = shadow[rel].swap_remove(idx);
        s.retract(name, vec![row]).unwrap();
    } else {
        let row = tuple![rng.next_range(0, dom), rng.next_range(0, dom)];
        shadow[rel].push(row.clone());
        s.append(name, vec![row]).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Exactly-once under random interleavings: random append/retract
    /// rounds, a SIGKILL at a random depth, re-admission, then more
    /// random rounds — every snapshot equals the recompute oracle, so
    /// no replayed epoch was double-applied and none was lost.
    #[test]
    fn recovery_is_exactly_once_under_random_interleavings(
        seed in 0u64..1000,
        steps_before in 2usize..7,
        steps_after in 1usize..5,
        dom in 2i64..6,
        aggregate in 0u8..2,
    ) {
        let select = if aggregate == 1 {
            "SELECT R.a, COUNT(*) FROM R, S WHERE R.b = S.a GROUP BY R.a"
        } else {
            "SELECT R.a, S.b FROM R, S WHERE R.b = S.a"
        };
        let mut rng = SplitMix64::new(seed);
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let gen = |rng: &mut SplitMix64, n: usize| -> Vec<Tuple> {
            (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
        };
        let mut shadow = [gen(&mut rng, 5), gen(&mut rng, 5)];

        let mut w0 = Worker::spawn();
        let w1 = Worker::spawn();
        let mut s = Session::builder()
            .machines(3)
            .seed(seed)
            .cluster([w0.addr.clone(), w1.addr.clone()])
            .checkpoint_interval(2)
            .heartbeat_timeout_ms(400)
            .build();
        s.register("R", schema.clone(), shadow[0].clone()).unwrap();
        s.register("S", schema, shadow[1].clone()).unwrap();
        let view = s.create_view("v", &squall::sql::parse(select).unwrap()).unwrap();

        for _ in 0..steps_before {
            random_step(&mut rng, &mut s, &mut shadow, dom);
        }
        prop_assert_eq!(view.snapshot().unwrap(), recompute(&s, select), "before failure");

        w0.kill();
        prop_assert!(matches!(await_worker_lost(&view), SquallError::WorkerLost { .. }));
        let w2 = Worker::spawn();
        view.recover([w2.addr.clone(), w1.addr.clone()]).unwrap();
        prop_assert_eq!(view.snapshot().unwrap(), recompute(&s, select), "post-recovery");

        for step in 0..steps_after {
            random_step(&mut rng, &mut s, &mut shadow, dom);
            prop_assert_eq!(
                view.snapshot().unwrap(),
                recompute(&s, select),
                "post-recovery step {}",
                step
            );
        }
        s.drop_view("v").unwrap();
    }
}
