//! Property tests for the columnar data plane:
//!
//! * `Chunk` ⇄ row-tuple conversion is lossless — down to the exact
//!   `Value` variant (`Int(3)` never comes back as `Float(3.0)`), for
//!   arbitrary schemas with nulls, empty chunks and Z-set tag columns;
//! * the columnar wire codec round-trips arbitrary chunks, dictionary
//!   encoding included;
//! * chunked execution is observationally identical to row-at-a-time
//!   execution (batch size 1) on the 3-way join + GROUP BY scenario,
//!   locally and over real loopback TCP;
//! * `GroupByAggregator::update_chunk` matches per-row `update`.

use proptest::prelude::*;
use squall::common::codec::{self, Reader};
use squall::common::{Chunk, SplitMix64, Tuple, Value};
use squall::engine::cluster::{serve_job, ClusterSpec};
use squall::engine::driver::{run_multiway, AggPlan, LocalJoinKind, MultiwayConfig};
use squall::expr::{JoinAtom, MultiJoinSpec, RelationDef, ScalarExpr};
use squall::join::naive::same_multiset;
use squall::join::{AggSpec, GroupByAggregator};
use squall::partition::optimizer::SchemeKind;

/// One random value for column policy `policy` — each policy stresses a
/// different array representation (typed, typed + validity, mixed,
/// all-null, dictionary-friendly hot keys).
fn rand_value(policy: u8, rng: &mut SplitMix64) -> Value {
    match policy {
        0 => Value::Int(rng.next_range(-1_000_000, 1_000_000)),
        1 => {
            if rng.next_range(0, 4) == 0 {
                Value::Null
            } else {
                Value::Int(rng.next_range(0, 100))
            }
        }
        2 => {
            if rng.next_range(0, 5) == 0 {
                Value::Null
            } else {
                Value::str(format!("s{}", rng.next_range(0, 50)))
            }
        }
        // Floats, including integral ones (which must stay Float).
        3 => Value::Float(rng.next_range(-50, 50) as f64 / 2.0),
        // Mixed variants in one column.
        4 => match rng.next_range(0, 5) {
            0 => Value::Null,
            1 => Value::Int(rng.next_range(0, 9)),
            2 => Value::Float(rng.next_range(0, 9) as f64),
            3 => Value::str("mix"),
            _ => Value::Date(squall::common::Date(rng.next_range(0, 20_000) as i32)),
        },
        5 => Value::Null,
        6 => Value::Date(squall::common::Date(rng.next_range(-10_000, 30_000) as i32)),
        // Hot integer keys: few distinct values over many rows, the shape
        // the wire dictionary encoding exists for.
        _ => Value::Int(rng.next_range(0, 4)),
    }
}

/// Uniform-arity random tuples with a trailing Z-set tag column (±1).
fn rand_tuples(seed: u64, rows: usize, arity: usize) -> Vec<Tuple> {
    let mut rng = SplitMix64::new(seed);
    let policies: Vec<u8> = (0..arity).map(|_| rng.next_range(0, 8) as u8).collect();
    (0..rows)
        .map(|_| {
            let mut v: Vec<Value> = policies.iter().map(|&p| rand_value(p, &mut rng)).collect();
            v.push(Value::Int(if rng.next_range(0, 2) == 0 { 1 } else { -1 }));
            Tuple::new(v)
        })
        .collect()
}

/// Exact equality: same value *and* same `Value` variant per cell
/// (`Value::eq` alone treats `Int(3)` and `Float(3.0)` as equal).
fn assert_exact(a: &[Tuple], b: &[Tuple]) {
    assert_eq!(a.len(), b.len(), "row count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x, y, "values differ");
        for (vx, vy) in x.values().iter().zip(y.values()) {
            assert_eq!(
                std::mem::discriminant(vx),
                std::mem::discriminant(vy),
                "variant changed: {vx:?} vs {vy:?}"
            );
        }
    }
}

fn loopback_workers(n: usize) -> (ClusterSpec, Vec<std::thread::JoinHandle<()>>) {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..n {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap().to_string());
        handles.push(std::thread::spawn(move || serve_job(&listener).unwrap()));
    }
    (ClusterSpec::new(addrs), handles)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// Chunk ⇄ tuples is lossless for arbitrary schemas (empty chunks and
    /// zero-arity rows included) and preserves per-row hashes.
    #[test]
    fn chunk_tuple_roundtrip_is_exact(
        seed in 0u64..10_000,
        rows in 0usize..50,
        arity in 0usize..6,
    ) {
        let tuples = rand_tuples(seed, rows, arity);
        let chunk = Chunk::from_tuples(&tuples);
        prop_assert_eq!(chunk.n_rows(), rows);
        if rows > 0 {
            prop_assert_eq!(chunk.n_cols(), arity + 1);
        }
        assert_exact(&chunk.to_tuples(), &tuples);
        // Row-view iterator agrees with to_tuples.
        let viewed: Vec<Tuple> = chunk.rows().collect();
        assert_exact(&viewed, &tuples);
    }

    /// The columnar wire codec round-trips arbitrary chunks exactly —
    /// including validity bitmaps, mixed columns and the dictionary path
    /// (hot-key columns over enough rows to trigger it).
    #[test]
    fn chunk_wire_codec_roundtrip(
        seed in 0u64..10_000,
        rows in 0usize..300,
        arity in 0usize..5,
    ) {
        let tuples = rand_tuples(seed, rows, arity);
        let chunk = Chunk::from_tuples(&tuples);
        let mut buf = Vec::new();
        codec::put_chunk(&mut buf, &chunk);
        let mut r = Reader::new(&buf);
        let back = codec::get_chunk(&mut r).unwrap();
        prop_assert_eq!(back.n_rows(), chunk.n_rows());
        prop_assert_eq!(back.n_cols(), chunk.n_cols());
        assert_exact(&back.to_tuples(), &tuples);
    }

    /// `GroupByAggregator::update_chunk` is observationally identical to
    /// per-row `update`: same online output rows, same final snapshot.
    #[test]
    fn group_by_update_chunk_matches_rows(
        seed in 0u64..5_000,
        rows in 1usize..120,
        dom in 1i64..12,
        chunk_rows in 1usize..40,
    ) {
        let mut rng = SplitMix64::new(seed);
        let tuples: Vec<Tuple> = (0..rows)
            .map(|_| Tuple::new(vec![
                Value::Int(rng.next_range(0, dom)),
                Value::Int(rng.next_range(-30, 30)),
            ]))
            .collect();
        let aggs = || vec![
            AggSpec::count(),
            AggSpec::sum(ScalarExpr::col(1)),
            AggSpec::avg(ScalarExpr::col(1)),
        ];
        let mut by_row = GroupByAggregator::new(vec![0], aggs());
        let mut by_chunk = GroupByAggregator::new(vec![0], aggs());
        let mut row_out = Vec::new();
        for t in &tuples {
            row_out.push(by_row.update(t).unwrap());
        }
        let mut chunk_out = Vec::new();
        for batch in tuples.chunks(chunk_rows) {
            let chunk = Chunk::from_tuples(batch);
            let mut emit = |row: Tuple| chunk_out.push(row);
            by_chunk.update_chunk(&chunk, Some(&mut emit)).unwrap();
        }
        prop_assert_eq!(&chunk_out, &row_out, "online rows diverge");
        prop_assert_eq!(by_chunk.snapshot(), by_row.snapshot());
        // Final-mode path (no row building) reaches the same state too.
        let mut by_final = GroupByAggregator::new(vec![0], aggs());
        by_final.update_chunk(&Chunk::from_tuples(&tuples), None).unwrap();
        prop_assert_eq!(by_final.snapshot(), by_row.snapshot());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Chunked execution (batch 64 / 1024) is observationally identical
    /// to row-at-a-time execution (batch 1) on a 3-way join + GROUP BY:
    /// same result rows, same per-machine loads, same result count —
    /// locally and across real loopback TCP.
    #[test]
    fn chunked_execution_matches_row_execution(
        seed in 0u64..500,
        machines in 2usize..8,
        dom in 3i64..10,
    ) {
        let mk = |n: &str| RelationDef::new(
            n,
            squall::common::Schema::of(&[
                ("a", squall::common::DataType::Int),
                ("b", squall::common::DataType::Int),
            ]),
            60,
        );
        let spec = MultiJoinSpec::new(
            vec![mk("R"), mk("S"), mk("T")],
            vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
        ).unwrap();
        let mut rng = SplitMix64::new(seed);
        let data: Vec<Vec<Tuple>> = (0..3)
            .map(|_| (0..60)
                .map(|_| Tuple::new(vec![
                    Value::Int(rng.next_range(0, dom)),
                    Value::Int(rng.next_range(0, dom)),
                ]))
                .collect())
            .collect();
        let base_cfg = || {
            let mut cfg = MultiwayConfig::new(
                SchemeKind::Hybrid, LocalJoinKind::DBToaster, machines);
            cfg.seed = seed;
            cfg.agg = Some(AggPlan {
                group_cols: vec![0],
                aggs: vec![AggSpec::count(), AggSpec::sum(ScalarExpr::col(5))],
                parallelism: 2,
            });
            cfg
        };

        // Row-at-a-time reference: every chunk holds exactly one tuple.
        let mut cfg = base_cfg();
        cfg.batch_size = 1;
        let by_row = run_multiway(&spec, data.clone(), &cfg).unwrap();
        prop_assert!(by_row.error.is_none());

        for batch in [64usize, 1024] {
            let mut cfg = base_cfg();
            cfg.batch_size = batch;
            let chunked = run_multiway(&spec, data.clone(), &cfg).unwrap();
            prop_assert!(chunked.error.is_none());
            prop_assert!(
                same_multiset(&chunked.results, &by_row.results),
                "batch {}: {} vs {} rows", batch,
                chunked.results.len(), by_row.results.len()
            );
            prop_assert_eq!(&chunked.loads, &by_row.loads, "loads differ at batch {}", batch);
            prop_assert_eq!(chunked.result_count, by_row.result_count);
        }

        // Same contract across the wire.
        let (cluster, handles) = loopback_workers(2);
        let mut cfg = base_cfg();
        cfg.batch_size = 64;
        cfg.cluster = Some(cluster);
        let dist = run_multiway(&spec, data, &cfg).unwrap();
        for h in handles { h.join().unwrap(); }
        prop_assert!(dist.error.is_none(), "{:?}", dist.error);
        prop_assert!(same_multiset(&dist.results, &by_row.results));
        prop_assert_eq!(&dist.loads, &by_row.loads);
        prop_assert_eq!(dist.result_count, by_row.result_count);
    }
}
