//! Property-based tests over the core invariants:
//!
//! * every hypercube scheme routes each joinable tuple combination to
//!   exactly one common machine;
//! * the distributed multi-way join (any scheme × any local algorithm)
//!   equals the nested-loop oracle on arbitrary data;
//! * the range-grid schemes cover exactly the matching pairs;
//! * DBToaster's aggregated views preserve result cardinalities.

use proptest::prelude::*;
use squall::common::{tuple, DataType, Schema, SplitMix64, SquallError, Tuple, Value};
use squall::engine::cluster::{serve_job, ClusterSpec};
use squall::engine::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall::expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall::join::naive::{naive_join, same_multiset};
use squall::join::{DBToasterJoin, LocalJoin, TraditionalJoin};
use squall::partition::grid::{equi_depth_bounds, RangeCond, RangeGrid};
use squall::partition::optimizer::{build_scheme, SchemeKind};

fn rel(name: &str, skewed: bool, size: u64) -> RelationDef {
    let mut schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
    if skewed {
        schema.set_skewed("b").unwrap();
    }
    RelationDef::new(name, schema, size)
}

/// Arbitrary chain spec R0 ⋈ R1 [⋈ R2] on b=a with random skew flags.
fn chain_spec(n: usize, skew_mask: u8, sizes: &[u64]) -> MultiJoinSpec {
    let rels: Vec<RelationDef> =
        (0..n).map(|i| rel(&format!("R{i}"), skew_mask & (1 << i) != 0, sizes[i])).collect();
    let atoms = (0..n - 1).map(|i| JoinAtom::eq(i, 1, i + 1, 0)).collect();
    MultiJoinSpec::new(rels, atoms).unwrap()
}

fn rand_data(n_rels: usize, rows: usize, dom: i64, seed: u64) -> Vec<Vec<Tuple>> {
    let mut rng = SplitMix64::new(seed);
    (0..n_rels)
        .map(|_| {
            (0..rows)
                .map(|_| {
                    Tuple::new(vec![
                        Value::Int(rng.next_range(0, dom)),
                        Value::Int(rng.next_range(0, dom)),
                    ])
                })
                .collect()
        })
        .collect()
}

/// In-process workers over real loopback TCP: the transport serializes
/// every batch through genuine sockets either way; the e2e suite covers
/// the separate-OS-process variant with spawned `squall-worker` children.
fn loopback_workers(n: usize) -> (ClusterSpec, Vec<std::thread::JoinHandle<()>>) {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..n {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap().to_string());
        handles.push(std::thread::spawn(move || serve_job(&listener).unwrap()));
    }
    (ClusterSpec::new(addrs), handles)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The transport contract on the 3-way hypercube scenario: a run split
    /// across TCP peers produces row-identical results and identical
    /// per-machine loads to the single-process run, for arbitrary data,
    /// machine counts, schemes and peer counts.
    #[test]
    fn tcp_transport_matches_local_on_hypercube(
        seed in 0u64..500,
        machines in 2usize..10,
        dom in 3i64..12,
        skew_mask in 0u8..8,
        n_workers in 1usize..3,
        scheme_pick in 0u8..3,
        batch in 0u8..2,
    ) {
        let spec = chain_spec(3, skew_mask, &[60, 60, 60]);
        let data = rand_data(3, 60, dom, seed);
        let kind = [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid][scheme_pick as usize];
        let mut cfg = MultiwayConfig::new(kind, LocalJoinKind::DBToaster, machines);
        cfg.seed = seed;
        cfg.batch_size = [7, 64][batch as usize];
        let local = run_multiway(&spec, data.clone(), &cfg).unwrap();
        prop_assert!(local.error.is_none());

        let (cluster, handles) = loopback_workers(n_workers);
        cfg.cluster = Some(cluster);
        let dist = run_multiway(&spec, data, &cfg).unwrap();
        for h in handles { h.join().unwrap(); }
        prop_assert!(dist.error.is_none(), "{:?}", dist.error);
        prop_assert!(same_multiset(&dist.results, &local.results),
            "{} distributed vs {} local rows", dist.results.len(), local.results.len());
        prop_assert_eq!(&dist.loads, &local.loads, "per-machine loads differ across the wire");
        prop_assert_eq!(dist.result_count, local.result_count);
        prop_assert!(dist.transport.is_some());
    }

    /// Same contract for the windowed-join scenario (event-time windows
    /// need per-relation FIFO order, which the wire must preserve), and
    /// for the MemoryOverflow abort-drain path (the typed error crosses
    /// the wire; every process drains instead of hanging).
    #[test]
    fn tcp_transport_matches_local_on_windows_and_abort(
        seed in 0u64..500,
        machines in 2usize..8,
        width in 5u64..60,
    ) {
        use squall::engine::driver::WindowPlan;
        use squall::join::WindowSpec;

        let spec = chain_spec(2, 0, &[80, 80]);
        // Column 1 doubles as the event-time column (non-negative by
        // construction in rand_data's 0..dom range — widen the domain so
        // windows actually evict).
        let data = rand_data(2, 80, 200, seed);
        let mut sorted = data.clone();
        for (d, ts_col) in sorted.iter_mut().zip([1usize, 1]) {
            squall::runtime::sort_by_event_time(d, ts_col).unwrap();
        }
        let mut cfg = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, machines);
        cfg.seed = seed;
        cfg.window = Some(WindowPlan { spec: WindowSpec::Sliding { size: width }, ts_cols: vec![1, 1] });
        let local = run_multiway(&spec, sorted.clone(), &cfg).unwrap();
        prop_assert!(local.error.is_none());

        let (cluster, handles) = loopback_workers(1);
        cfg.cluster = Some(cluster);
        let dist = run_multiway(&spec, sorted, &cfg).unwrap();
        for h in handles { h.join().unwrap(); }
        prop_assert!(same_multiset(&dist.results, &local.results),
            "windowed: {} distributed vs {} local", dist.results.len(), local.results.len());
        prop_assert_eq!(&dist.loads, &local.loads);

        // Abort-drain: a budget small enough to overflow some machine.
        let spec = chain_spec(3, 0, &[120, 120, 120]);
        let data = rand_data(3, 120, 3, seed);
        let mut cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 2)
            .count_only()
            .with_budget(20);
        cfg.seed = seed;
        let local = run_multiway(&spec, data.clone(), &cfg).unwrap();
        prop_assert!(matches!(local.error, Some(SquallError::MemoryOverflow { .. })));
        let (cluster, handles) = loopback_workers(1);
        cfg.cluster = Some(cluster);
        let dist = run_multiway(&spec, data, &cfg).unwrap();
        for h in handles { h.join().unwrap(); }
        prop_assert!(
            matches!(dist.error, Some(SquallError::MemoryOverflow { budget: 20, .. })),
            "typed overflow must cross the wire, got {:?}", dist.error
        );
    }

    #[test]
    fn scheme_routing_meets_exactly_once(
        machines in 1usize..24,
        seed in 0u64..1000,
        skew_mask in 0u8..8,
    ) {
        let spec = chain_spec(3, skew_mask, &[100, 100, 100]);
        for kind in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
            let scheme = build_scheme(kind, &spec, machines, seed).unwrap();
            let mut rng = SplitMix64::new(seed);
            // Joinable chain: R0.b = R1.a, R1.b = R2.a.
            for k in 0..12i64 {
                let t0 = Tuple::new(vec![Value::Int(k), Value::Int(k + 1)]);
                let t1 = Tuple::new(vec![Value::Int(k + 1), Value::Int(k + 2)]);
                let t2 = Tuple::new(vec![Value::Int(k + 2), Value::Int(k + 3)]);
                let (mut m0, mut m1, mut m2) = (vec![], vec![], vec![]);
                scheme.route(0, &t0, &mut rng, &mut m0);
                scheme.route(1, &t1, &mut rng, &mut m1);
                scheme.route(2, &t2, &mut rng, &mut m2);
                let common = m0.iter().filter(|m| m1.contains(m) && m2.contains(m)).count();
                prop_assert_eq!(common, 1, "scheme {} k {}", scheme.describe(), k);
            }
        }
    }

    #[test]
    fn distributed_join_equals_oracle(
        seed in 0u64..500,
        machines in 1usize..10,
        dom in 3i64..12,
        skew_mask in 0u8..8,
    ) {
        let spec = chain_spec(3, skew_mask, &[40, 40, 40]);
        let data = rand_data(3, 40, dom, seed);
        let oracle = naive_join(&spec, &data);
        for kind in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
            let cfg = MultiwayConfig::new(kind, LocalJoinKind::DBToaster, machines);
            let rep = run_multiway(&spec, data.clone(), &cfg).unwrap();
            prop_assert!(rep.error.is_none());
            prop_assert!(
                same_multiset(&rep.results, &oracle),
                "{kind}: {} vs {}", rep.results.len(), oracle.len()
            );
        }
    }

    #[test]
    fn local_joins_agree_under_any_arrival_order(
        seed in 0u64..500,
        dom in 2i64..10,
    ) {
        let spec = chain_spec(2, 0, &[60, 60]);
        let data = rand_data(2, 60, dom, seed);
        let mut arrivals: Vec<(usize, Tuple)> = data
            .iter()
            .enumerate()
            .flat_map(|(r, ts)| ts.iter().map(move |t| (r, t.clone())))
            .collect();
        SplitMix64::new(seed ^ 0xabc).shuffle(&mut arrivals);
        let mut tj = TraditionalJoin::new(&spec);
        let mut dj = DBToasterJoin::new(&spec);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for (r, t) in &arrivals {
            tj.insert(*r, t, &mut a);
            dj.insert(*r, t, &mut b);
        }
        prop_assert!(same_multiset(&a, &b));
        prop_assert!(same_multiset(&a, &naive_join(&spec, &data)));
    }

    #[test]
    fn range_grid_owns_exactly_matching_pairs(
        seed in 0u64..500,
        width in 0i64..6,
        machines in 1usize..10,
        granularity in 2usize..24,
    ) {
        let mut rng = SplitMix64::new(seed);
        let r_keys: Vec<i64> = (0..80).map(|_| rng.next_range(0, 60)).collect();
        let s_keys: Vec<i64> = (0..80).map(|_| rng.next_range(0, 60)).collect();
        let cond = RangeCond::Band(width);
        let grid = RangeGrid::build(
            equi_depth_bounds(&r_keys, granularity),
            equi_depth_bounds(&s_keys, granularity),
            cond,
            machines,
            &|_, _| 1.0,
        ).unwrap();
        for &r in r_keys.iter().take(25) {
            for &s in s_keys.iter().take(25) {
                if cond.matches(r, s) {
                    let owner = grid.owner_of(r, s);
                    prop_assert!(owner.is_some());
                    let m = owner.unwrap();
                    prop_assert!(grid.route_r(r).contains(&m));
                    prop_assert!(grid.route_s(s).contains(&m));
                    // Unique ownership.
                    let owners = (0..machines).filter(|&x| grid.owns(x, r, s)).count();
                    prop_assert_eq!(owners, 1);
                }
            }
        }
    }

    #[test]
    fn aggregated_views_preserve_cardinality(
        seed in 0u64..500,
        dom in 2i64..10,
    ) {
        use squall::join::dbtoaster::AggregatedDBToaster;
        let spec = chain_spec(3, 0, &[30, 30, 30]);
        let data = rand_data(3, 30, dom, seed);
        let oracle = naive_join(&spec, &data);
        let mut agg = AggregatedDBToaster::minimal(&spec);
        let mut total: i64 = 0;
        let mut out = Vec::new();
        for (r, ts) in data.iter().enumerate() {
            for t in ts {
                out.clear();
                agg.insert_weighted(r, t, &mut out);
                total += out.iter().map(|(_, m)| *m).sum::<i64>();
            }
        }
        prop_assert_eq!(total as usize, oracle.len());
    }

    #[test]
    fn window_queries_match_in_window_oracle(
        seed in 0u64..200,
        machines in 1usize..6,
        size in 1i64..40,
        width in 1i64..40,
        dom in 2i64..8,
    ) {
        // Seeded random event streams (key, ts) with ascending timestamps.
        let mut rng = SplitMix64::new(seed);
        let mut gen = |n: usize| -> Vec<Tuple> {
            let mut ts = 0i64;
            (0..n)
                .map(|_| {
                    ts += rng.next_range(0, 6);
                    tuple![rng.next_range(0, dom), ts]
                })
                .collect()
        };
        let (a, b) = (gen(40), gen(40));
        let schema = Schema::of(&[("k", DataType::Int), ("ts", DataType::Int)]);
        let mut session = squall::Session::builder().machines(machines).seed(seed).build();
        session
            .register_stream("A", schema.clone(), a.clone(), "ts").unwrap()
            .register_stream("B", schema, b.clone(), "ts").unwrap();

        let pairs = || a.iter().flat_map(|x| b.iter().map(move |y| (x, y)));
        let keyed = |x: &Tuple, y: &Tuple| x.get(0) == y.get(0);
        let ts_of = |t: &Tuple| t.get(1).as_int().unwrap();

        // Sliding: SQL and builder paths both equal the |Δts| ≤ size oracle.
        let mut oracle: Vec<Tuple> = pairs()
            .filter(|(x, y)| keyed(x, y) && (ts_of(x) - ts_of(y)).abs() <= size)
            .map(|(x, y)| tuple![x.get(0).as_int().unwrap(), ts_of(x), ts_of(y)])
            .collect();
        oracle.sort();
        let mut sql = session
            .sql(&format!(
                "SELECT A.k, A.ts, B.ts FROM A, B WHERE A.k = B.k WINDOW SLIDING {size} ON ts"
            ))
            .unwrap();
        let mut built = session
            .from("A")
            .join("B")
            .on(squall::col("A.k").eq(squall::col("B.k")))
            .window(squall::Window::sliding(size as u64).on("ts"))
            .select([squall::col("A.k"), squall::col("A.ts"), squall::col("B.ts")])
            .run()
            .unwrap();
        prop_assert_eq!(sql.rows(), &oracle[..], "sliding SQL vs oracle");
        prop_assert_eq!(built.rows(), sql.rows(), "sliding builder vs SQL");

        // Tumbling: same-bucket oracle.
        let mut oracle: Vec<Tuple> = pairs()
            .filter(|(x, y)| keyed(x, y) && ts_of(x) / width == ts_of(y) / width)
            .map(|(x, y)| tuple![x.get(0).as_int().unwrap(), ts_of(x), ts_of(y)])
            .collect();
        oracle.sort();
        let mut sql = session
            .sql(&format!(
                "SELECT A.k, A.ts, B.ts FROM A, B WHERE A.k = B.k WINDOW TUMBLING {width} ON ts"
            ))
            .unwrap();
        let mut built = session
            .from("A")
            .join("B")
            .on(squall::col("A.k").eq(squall::col("B.k")))
            .window(squall::Window::tumbling(width as u64))
            .select([squall::col("A.k"), squall::col("A.ts"), squall::col("B.ts")])
            .run()
            .unwrap();
        prop_assert_eq!(sql.rows(), &oracle[..], "tumbling SQL vs oracle");
        prop_assert_eq!(built.rows(), sql.rows(), "tumbling builder vs SQL");
    }

    /// Windowed GROUP BY against a brute-force per-window oracle: every
    /// (window, group) row — tumbling buckets including the exact
    /// `k·width` boundary (timestamps are drawn so multiples of `width`
    /// occur), and sliding windows with their per-time-unit overlap.
    /// SQL and the builder must agree; the group-hash-sharded plane
    /// (parallelism ∈ {1, 2, 8}) must be byte-identical to the 1-task
    /// plane; and a run split across TCP peers must return the identical
    /// per-window rows.
    #[test]
    fn windowed_aggregates_match_per_window_oracle(
        seed in 0u64..200,
        machines in 1usize..6,
        width in 2u64..12,
        size in 1u64..10,
        dom in 2i64..6,
        distribute in 0u8..2,
        par_pick in 0u8..3,
    ) {
        let agg_par = [1usize, 2, 8][par_pick as usize];
        // Timestamps step by 0..width, so exact window boundaries (ts a
        // multiple of width) are common — the k·width case must open
        // window k, never leak into k−1.
        let mut rng = SplitMix64::new(seed);
        let mut gen = |n: usize| -> Vec<Tuple> {
            let mut ts = 0i64;
            (0..n)
                .map(|_| {
                    ts += rng.next_range(0, width as i64 + 1);
                    tuple![rng.next_range(0, dom), ts]
                })
                .collect()
        };
        let (a, b) = (gen(30), gen(30));
        let schema = Schema::of(&[("k", DataType::Int), ("ts", DataType::Int)]);
        let mut session = squall::Session::builder()
            .machines(machines)
            .agg_parallelism(agg_par)
            .seed(seed)
            .build();
        session
            .register_stream("A", schema.clone(), a.clone(), "ts").unwrap()
            .register_stream("B", schema.clone(), b.clone(), "ts").unwrap();

        // In-memory oracle: per-window COUNT per group key.
        let oracle = |win_of: &dyn Fn(u64, u64) -> (u64, u64), end_of: &dyn Fn(u64) -> u64| {
            let mut acc: std::collections::BTreeMap<(u64, i64), i64> = Default::default();
            for x in &a {
                for y in &b {
                    if x.get(0) != y.get(0) { continue; }
                    let (tx, ty) = (x.get(1).as_int().unwrap() as u64, y.get(1).as_int().unwrap() as u64);
                    let (first, last) = win_of(tx.min(ty), tx.max(ty));
                    if first > last { continue; } // pair joins in no window
                    for s in first..=last {
                        *acc.entry((s, x.get(0).as_int().unwrap())).or_insert(0) += 1;
                    }
                }
            }
            acc.into_iter()
                .map(|((s, k), n)| tuple![s as i64, end_of(s) as i64, k, n])
                .collect::<Vec<Tuple>>()
        };

        // Tumbling: one window iff both timestamps share the bucket.
        let w = width;
        let tumbling_oracle = oracle(
            &|lo, hi| if lo / w == hi / w { (hi / w * w, hi / w * w) } else { (1, 0) },
            &|s| s + w - 1,
        );
        let sql = format!(
            "SELECT A.k, COUNT(*) FROM A, B WHERE A.k = B.k WINDOW TUMBLING {w} ON ts GROUP BY A.k"
        );
        let mut via_sql = session.sql(&sql).unwrap();
        prop_assert_eq!(via_sql.rows(), &tumbling_oracle[..], "tumbling vs oracle");
        let mut built = session
            .from("A").join("B")
            .on(squall::col("A.k").eq(squall::col("B.k")))
            .window(squall::Window::tumbling(w))
            .group_by([squall::col("A.k")])
            .select([squall::col("A.k"), squall::count()])
            .run()
            .unwrap();
        prop_assert_eq!(built.rows(), via_sql.rows(), "tumbling builder vs SQL");

        // Sliding: all windows [s, s+size] containing both timestamps.
        let sz = size;
        let sliding_oracle = oracle(&|lo, hi| (hi.saturating_sub(sz), lo), &|s| s + sz);
        let sql = format!(
            "SELECT A.k, COUNT(*) FROM A, B WHERE A.k = B.k WINDOW SLIDING {sz} ON ts GROUP BY A.k"
        );
        let mut via_sql = session.sql(&sql).unwrap();
        prop_assert_eq!(via_sql.rows(), &sliding_oracle[..], "sliding vs oracle");

        // Byte-identity: the sharded plane (merge sink behind group-hash
        // shards) must reproduce the 1-task plane's ordered output
        // exactly, not just as a multiset.
        if agg_par != 1 {
            let mut single = squall::Session::builder()
                .machines(machines)
                .agg_parallelism(1)
                .seed(seed)
                .build();
            single
                .register_stream("A", schema.clone(), a.clone(), "ts").unwrap()
                .register_stream("B", schema, b.clone(), "ts").unwrap();
            let mut rs = single.sql(&sql).unwrap();
            prop_assert_eq!(
                rs.rows(), via_sql.rows(),
                "{} shards vs single task (byte identity)", agg_par
            );
        }

        // Placement independence: the same per-window rows over TCP, with
        // the agg shards spread across peers.
        if distribute == 1 {
            let (cluster, handles) = loopback_workers(1);
            let mut dist = squall::Session::builder()
                .machines(machines)
                .agg_parallelism(agg_par)
                .seed(seed)
                .build();
            std::mem::swap(dist.catalog_mut(), session.catalog_mut());
            dist.config_mut().cluster = Some(cluster);
            let mut rs = dist.sql(&sql).unwrap();
            prop_assert_eq!(rs.rows(), &sliding_oracle[..], "distributed sliding vs oracle");
            for h in handles { h.join().unwrap(); }
        }
    }

    #[test]
    fn spill_store_roundtrips(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1000i64..1000, 1..5), 0..60),
        budget in 0usize..2000,
    ) {
        use squall::join::SpillStore;
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|vals| Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect()))
            .collect();
        let mut store = SpillStore::new(budget);
        for t in &tuples {
            store.push(t.clone()).unwrap();
        }
        prop_assert_eq!(store.len(), tuples.len());
        let back = store.scan().unwrap();
        prop_assert!(same_multiset(&back, &tuples));
    }
}
