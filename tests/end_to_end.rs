//! End-to-end integration tests: the paper's evaluation queries, run
//! through the full stack (session → SQL or imperative builder → plan →
//! optimizer → topology → results), checked against the naive in-memory
//! oracle — and checked SQL-vs-imperative: both interfaces must lower to
//! the same plan and produce identical rows *and* identical run reports.

use squall::common::{Tuple, Value};
use squall::data::tpch::{self, TpchGen};
use squall::data::webgraph::{WebGraphGen, HUB};
use squall::data::{crawlcontent, google_cluster, queries};
use squall::engine::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall::join::naive::{naive_join, same_multiset};
use squall::partition::optimizer::SchemeKind;
use squall::session::JoinReport;
use squall::{col, count, lit, sum, ResultSet, Session};

/// Group-by-count oracle over join output.
fn oracle_group_count(joined: &[Tuple], cols: &[usize]) -> Vec<Tuple> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<Vec<Value>, i64> = BTreeMap::new();
    for t in joined {
        *counts.entry(t.key(cols)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(mut k, c)| {
            k.push(Value::Int(c));
            Tuple::new(k)
        })
        .collect()
}

/// The deterministic parts of two runs' reports must coincide when the
/// same plan ran with the same config and seed (elapsed time may differ).
fn assert_reports_match(a: &JoinReport, b: &JoinReport) {
    assert_eq!(a.result_count, b.result_count, "result counts");
    assert_eq!(a.input_count, b.input_count, "source input counts");
    assert_eq!(a.loads, b.loads, "per-machine loads");
    assert_eq!(a.scheme_description, b.scheme_description, "chosen scheme");
    assert!((a.replication_factor - b.replication_factor).abs() < 1e-9);
    assert!((a.skew_degree - b.skew_degree).abs() < 1e-9);
    assert!((a.network_factor - b.network_factor).abs() < 1e-9);
}

/// SQL path and imperative path must produce byte-identical rows, equal
/// schemas and matching reports.
fn assert_equivalent(mut sql: ResultSet, mut imperative: ResultSet) {
    assert_eq!(sql.schema().arity(), imperative.schema().arity());
    assert_eq!(sql.rows(), imperative.rows(), "rows must be byte-identical");
    match (sql.report(), imperative.report()) {
        (Some(a), Some(b)) => assert_reports_match(a, b),
        (None, None) => {}
        _ => panic!("one interface ran distributed, the other locally"),
    }
}

#[test]
fn reachability3_all_schemes_agree_with_oracle() {
    let arcs = WebGraphGen::new(150, 900, 3).generate();
    let q = queries::reachability3(&arcs);
    let oracle = naive_join(&q.spec, &q.data);
    assert!(!oracle.is_empty());
    for scheme in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
        let cfg = MultiwayConfig::new(scheme, LocalJoinKind::DBToaster, 9).count_only();
        let rep = run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
        assert!(rep.error.is_none());
        assert_eq!(rep.result_count, oracle.len() as u64, "{scheme}");
    }
}

#[test]
fn tpch9_partial_counts_match_oracle_under_skew() {
    let data = TpchGen::new(0.2, 2.0, 5).generate();
    let q = queries::tpch9_partial(&data, true);
    let oracle = naive_join(&q.spec, &q.data);
    for scheme in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
        for local in [LocalJoinKind::Traditional, LocalJoinKind::DBToaster] {
            let cfg = MultiwayConfig::new(scheme, local, 8).count_only();
            let rep = run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
            assert_eq!(rep.result_count, oracle.len() as u64, "{scheme} {local}");
        }
    }
}

fn google_session(trace: &google_cluster::GoogleClusterData) -> Session {
    let mut session = Session::builder().machines(4).build();
    session
        .register(
            "MACHINE_EVENTS",
            google_cluster::machine_events_schema(),
            trace.machine_events.clone(),
        )
        .unwrap();
    session
        .register("JOB_EVENTS", google_cluster::job_events_schema(), trace.job_events.clone())
        .unwrap();
    session
        .register("TASK_EVENTS", google_cluster::task_events_schema(), trace.task_events.clone())
        .unwrap();
    session
}

const GOOGLE_TASKCOUNT_SQL: &str =
    "SELECT MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform, COUNT(*) \
     FROM JOB_EVENTS, TASK_EVENTS, MACHINE_EVENTS \
     WHERE TASK_EVENTS.eventType = 3 \
       AND JOB_EVENTS.jobID = TASK_EVENTS.jobID \
       AND MACHINE_EVENTS.machineID = TASK_EVENTS.machineID \
     GROUP BY MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform";

fn google_taskcount_imperative(session: &Session) -> ResultSet {
    session
        .from("JOB_EVENTS")
        .join("TASK_EVENTS")
        .join("MACHINE_EVENTS")
        .filter(col("TASK_EVENTS.eventType").eq(lit(3)))
        .on(col("JOB_EVENTS.jobID").eq(col("TASK_EVENTS.jobID")))
        .on(col("MACHINE_EVENTS.machineID").eq(col("TASK_EVENTS.machineID")))
        .group_by([col("MACHINE_EVENTS.machineID"), col("MACHINE_EVENTS.platform")])
        .select([count()])
        .run()
        .unwrap()
}

#[test]
fn google_taskcount_sql_end_to_end() {
    let trace = google_cluster::generate(3000, 9);
    let session = google_session(&trace);
    let mut res = session.sql(GOOGLE_TASKCOUNT_SQL).unwrap();

    // Oracle via the prepared query instance + group-count.
    let q = queries::google_taskcount(&trace);
    let joined = naive_join(&q.spec, &q.data);
    let expected = oracle_group_count(&joined, &q.agg_group_cols);
    assert_eq!(res.rows().len(), expected.len());
    assert!(same_multiset(res.rows(), &expected));
}

#[test]
fn google_taskcount_sql_equals_imperative() {
    let trace = google_cluster::generate(3000, 9);
    let session = google_session(&trace);
    let sql = session.sql(GOOGLE_TASKCOUNT_SQL).unwrap();
    let imperative = google_taskcount_imperative(&session);
    assert_equivalent(sql, imperative);
}

fn webanalytics_session(arcs: &[Tuple], content: &[Tuple]) -> Session {
    let mut session = Session::builder().machines(4).build();
    session.register("WebGraph", squall::data::webgraph::webgraph_schema(), arcs.to_vec()).unwrap();
    session
        .register("CrawlContent", crawlcontent::crawlcontent_schema(), content.to_vec())
        .unwrap();
    session
}

// HUB is integer id 0 in the synthetic graph.
const WEBANALYTICS_SQL: &str = "SELECT W1.FromUrl, C.Score, COUNT(*) \
     FROM WebGraph W1, WebGraph W2, CrawlContent C \
     WHERE W1.ToUrl = 0 AND W2.FromUrl = 0 \
       AND W1.ToUrl = W2.FromUrl AND W1.FromUrl = C.Url \
     GROUP BY W1.FromUrl, C.Score";

fn webanalytics_imperative(session: &Session) -> ResultSet {
    session
        .from_as("WebGraph", "W1")
        .join_as("WebGraph", "W2")
        .join_as("CrawlContent", "C")
        .filter(col("W1.ToUrl").eq(lit(0)))
        .filter(col("W2.FromUrl").eq(lit(0)))
        .on(col("W1.ToUrl").eq(col("W2.FromUrl")))
        .on(col("W1.FromUrl").eq(col("C.Url")))
        .group_by([col("W1.FromUrl"), col("C.Score")])
        .select([count()])
        .run()
        .unwrap()
}

#[test]
fn webanalytics_sql_end_to_end() {
    let arcs = WebGraphGen::new(300, 4000, 7).generate();
    let content = crawlcontent::generate(300, 8);
    let session = webanalytics_session(&arcs, &content);
    let mut res = session.sql(WEBANALYTICS_SQL).unwrap();

    let q = queries::webanalytics(&arcs, &content);
    let joined = naive_join(&q.spec, &q.data);
    let expected = oracle_group_count(&joined, &q.agg_group_cols);
    assert_eq!(res.rows().len(), expected.len());
    assert!(same_multiset(res.rows(), &expected));
    assert!(!res.rows().is_empty(), "hub must have 2-hop paths");
    let _ = HUB;
}

#[test]
fn webanalytics_sql_equals_imperative() {
    let arcs = WebGraphGen::new(300, 4000, 7).generate();
    let content = crawlcontent::generate(300, 8);
    let session = webanalytics_session(&arcs, &content);
    let sql = session.sql(WEBANALYTICS_SQL).unwrap();
    let imperative = webanalytics_imperative(&session);
    assert_equivalent(sql, imperative);
}

#[test]
fn webanalytics_streaming_iterator_and_report() {
    let arcs = WebGraphGen::new(300, 4000, 7).generate();
    let content = crawlcontent::generate(300, 8);
    let session = webanalytics_session(&arcs, &content);

    let mut stream = session.sql_stream(WEBANALYTICS_SQL).unwrap();
    assert!(stream.is_streaming());
    let mut streamed: Vec<Tuple> = Vec::new();
    for row in stream.by_ref() {
        streamed.push(row);
    }
    let stream_report = stream.report().expect("report after exhaustion");
    assert!(stream_report.error.is_none());
    assert!(stream_report.loads.iter().sum::<u64>() > 0, "metrics survive streaming");

    let mut materialized = session.sql(WEBANALYTICS_SQL).unwrap();
    streamed.sort();
    assert_eq!(materialized.rows(), streamed, "streaming yields the same rows");
    assert_reports_match(materialized.report().unwrap(), stream.report().unwrap());
}

#[test]
fn q3_functional_interface_end_to_end() {
    let data = TpchGen::new(0.2, 0.0, 4).generate();
    let mut session = Session::new();
    session.register("CUSTOMER", tpch::customer_schema(), data.customer.clone()).unwrap();
    session.register("ORDERS", tpch::orders_schema(), data.orders.clone()).unwrap();
    session.register("LINEITEM", tpch::lineitem_schema(), data.lineitem.clone()).unwrap();
    let mut res = session
        .from_as("CUSTOMER", "C")
        .join_as("ORDERS", "O")
        .join_as("LINEITEM", "L")
        .on(col("C.custkey").eq(col("O.custkey")))
        .on(col("O.orderkey").eq(col("L.orderkey")))
        .select([count()])
        .run()
        .unwrap();

    let qi = queries::tpch_q3(&data);
    let oracle = naive_join(&qi.spec, &qi.data);
    assert_eq!(res.rows()[0].get(0).as_int().unwrap(), oracle.len() as i64);

    // And the SQL twin agrees, rows and report.
    let sql = session
        .sql(
            "SELECT COUNT(*) FROM CUSTOMER C, ORDERS O, LINEITEM L \
             WHERE C.custkey = O.custkey AND O.orderkey = L.orderkey",
        )
        .unwrap();
    let imperative = session
        .from_as("CUSTOMER", "C")
        .join_as("ORDERS", "O")
        .join_as("LINEITEM", "L")
        .on(col("C.custkey").eq(col("O.custkey")))
        .on(col("O.orderkey").eq(col("L.orderkey")))
        .select([count()])
        .run()
        .unwrap();
    assert_equivalent(sql, imperative);
}

#[test]
fn multiway_equals_pipeline_equals_oracle() {
    let arcs = WebGraphGen::new(120, 700, 21).generate();
    let q = queries::reachability3(&arcs);
    let oracle = naive_join(&q.spec, &q.data);
    let multi = run_multiway(
        &q.spec,
        q.data.clone(),
        &MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 4),
    )
    .unwrap();
    assert!(same_multiset(&multi.results, &oracle));
    let pipe = squall::engine::run_pipeline(
        &q.spec,
        q.data.clone(),
        &[0, 1, 2],
        4,
        LocalJoinKind::Traditional,
        true,
    )
    .unwrap();
    assert!(same_multiset(&pipe.results, &oracle));
}

/// OS threads of this process (Linux); `None` elsewhere.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
}

/// The tentpole contract: a 3-way hypercube join whose task count is ≥ 16×
/// the worker pool must (a) run on `worker_threads + O(1)` OS threads, and
/// (b) produce exactly the rows a generously-threaded run produces.
#[test]
fn oversubscribed_pool_matches_baseline_results() {
    let arcs = WebGraphGen::new(150, 900, 3).generate();
    let q = queries::reachability3(&arcs);
    let oracle = naive_join(&q.spec, &q.data);
    assert!(!oracle.is_empty());

    // 64 join machines + 3 spout tasks + sink work on a 2-thread pool.
    let mut tight = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 64);
    tight.worker_threads = Some(2);
    assert!(64 >= 16 * tight.worker_threads.unwrap());

    let baseline = os_thread_count();
    let mut stream =
        squall::engine::driver::run_multiway_stream(&q.spec, q.data.clone(), &tight).unwrap();
    let mut rows: Vec<Tuple> = Vec::new();
    rows.extend(stream.by_ref().take(1)); // the pool is definitely live now

    // Thread-per-task would add ≥ 67 threads here; the pool adds 2. The
    // slack tolerates other tests in this binary concurrently launching
    // default-sized pools (≤ host parallelism each), so it scales with the
    // host rather than assuming a small CI machine.
    let concurrent_pools = 2 * std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    if let (Some(before), Some(during)) = (baseline, os_thread_count()) {
        assert!(
            during <= before + 2 + 8 + concurrent_pools,
            "{during} OS threads for a 64-machine topology (baseline {before}, pool 2)"
        );
    }
    rows.extend(stream.by_ref());
    let tight_report = stream.finish();
    assert!(tight_report.error.is_none());
    assert_eq!(tight_report.scheduler.workers, 2, "pool size honored");
    assert!(same_multiset(&rows, &oracle), "oversubscribed run matches the oracle");

    // A generously-threaded run of the same plan: identical sorted rows
    // and identical per-machine loads (scheduling must not leak into
    // results or routing).
    let mut roomy = MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 64);
    roomy.worker_threads = Some(8);
    let baseline_report = run_multiway(&q.spec, q.data.clone(), &roomy).unwrap();
    let mut baseline_rows = baseline_report.results.clone();
    baseline_rows.sort();
    rows.sort();
    assert_eq!(rows, baseline_rows, "worker pool size must not change results");
    assert_eq!(tight_report.loads, baseline_report.loads, "routing is pool-independent");
}

/// Abort semantics survive oversubscription: a memory overflow on a
/// 64-task/2-worker pool still drains every queue and terminates.
#[test]
fn oversubscribed_abort_drains_and_terminates() {
    let data = TpchGen::new(0.5, 2.0, 6).generate();
    let q = queries::tpch9_partial(&data, true);
    let mut cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 64)
        .count_only()
        .with_budget(50);
    cfg.worker_threads = Some(2);
    let rep = run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
    assert!(matches!(rep.error, Some(squall::common::SquallError::MemoryOverflow { .. })));
    assert!(rep.loads.iter().sum::<u64>() > 0, "partial loads for extrapolation");
    assert_eq!(rep.scheduler.workers, 2);
}

#[test]
fn memory_overflow_reports_partial_metrics() {
    let data = TpchGen::new(0.5, 2.0, 6).generate();
    let q = queries::tpch9_partial(&data, true);
    let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 8)
        .count_only()
        .with_budget(200);
    let rep = run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
    assert!(matches!(rep.error, Some(squall::common::SquallError::MemoryOverflow { .. })));
    assert!(rep.loads.iter().sum::<u64>() > 0, "partial loads for extrapolation");
}

fn figure1_session() -> Session {
    // The architecture figure's relations R, S, T.
    use squall::common::{tuple, DataType, Schema, SplitMix64};
    let mut rng = SplitMix64::new(2);
    let mut session = Session::builder().machines(4).build();
    session
        .register(
            "R",
            Schema::of(&[("A", DataType::Int), ("B", DataType::Int)]),
            (0..300).map(|_| tuple![rng.next_range(0, 50), rng.next_range(0, 20)]).collect(),
        )
        .unwrap();
    session
        .register(
            "S",
            Schema::of(&[("B", DataType::Int), ("C", DataType::Int), ("D", DataType::Int)]),
            (0..300)
                .map(|_| {
                    tuple![rng.next_range(0, 20), rng.next_range(0, 10), rng.next_range(0, 20)]
                })
                .collect(),
        )
        .unwrap();
    session
        .register(
            "T",
            Schema::of(&[("D", DataType::Int), ("E", DataType::Int)]),
            (0..300).map(|_| tuple![rng.next_range(0, 20), rng.next_range(0, 100)]).collect(),
        )
        .unwrap();
    session
}

#[test]
fn sql_figure1_query_runs() {
    let session = figure1_session();
    let mut res = session
        .sql("SELECT SUM(T.E) FROM R, S, T WHERE R.B = S.B AND S.D = T.D AND S.C > 3")
        .unwrap();
    assert_eq!(res.rows().len(), 1);
    // Oracle.
    use squall::expr::{JoinAtom, MultiJoinSpec, RelationDef};
    let catalog = session.catalog();
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new("R", catalog.get("R").unwrap().schema.clone(), 300),
            RelationDef::new("S", catalog.get("S").unwrap().schema.clone(), 300),
            RelationDef::new("T", catalog.get("T").unwrap().schema.clone(), 300),
        ],
        vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 2, 2, 0)],
    )
    .unwrap();
    let s_filtered: Vec<Tuple> = catalog
        .get("S")
        .unwrap()
        .data
        .iter()
        .filter(|t| t.get(1).as_int().unwrap() > 3)
        .cloned()
        .collect();
    let joined = naive_join(
        &spec,
        &[
            catalog.get("R").unwrap().data.as_ref().clone(),
            s_filtered,
            catalog.get("T").unwrap().data.as_ref().clone(),
        ],
    );
    let expected: i64 = joined.iter().map(|t| t.get(6).as_int().unwrap()).sum();
    assert_eq!(res.rows()[0].get(0).as_int().unwrap(), expected);
}

#[test]
fn figure1_sql_equals_imperative() {
    let session = figure1_session();
    let sql = session
        .sql("SELECT SUM(T.E) FROM R, S, T WHERE R.B = S.B AND S.D = T.D AND S.C > 3")
        .unwrap();
    let imperative = session
        .from("R")
        .join("S")
        .join("T")
        .on(col("R.B").eq(col("S.B")))
        .on(col("S.D").eq(col("T.D")))
        .filter(col("S.C").gt(lit(3)))
        .select([sum(col("T.E"))])
        .run()
        .unwrap();
    assert_equivalent(sql, imperative);
}

/// The §2 click-stream scenario: impressions joined to clicks within a
/// sliding window, through both interfaces, against a pure timestamp
/// oracle, with streaming consumption while the topology runs.
#[test]
fn windowed_clickstream_sql_builder_and_oracle_agree() {
    use squall::common::{tuple, DataType, Schema, SplitMix64};
    use squall::Window;

    let mut rng = SplitMix64::new(31);
    let mut impressions: Vec<Tuple> = Vec::new();
    let mut clicks: Vec<Tuple> = Vec::new();
    let mut ts = 0i64;
    for _ in 0..2_000 {
        ts += rng.next_range(0, 3);
        let ad = rng.next_range(0, 40);
        impressions.push(tuple![ad, ts]);
        if rng.next_f64() < 0.2 {
            clicks.push(tuple![ad, ts + rng.next_range(0, 45)]);
        }
    }
    let schema = Schema::of(&[("ad_id", DataType::Int), ("ts", DataType::Int)]);
    let mut session = Session::builder().machines(4).build();
    session
        .register_stream("impressions", schema.clone(), impressions.clone(), "ts")
        .unwrap()
        .register_stream("clicks", schema, clicks.clone(), "ts")
        .unwrap();

    let sql_text = "SELECT I.ad_id, I.ts, C.ts FROM impressions I, clicks C \
                    WHERE I.ad_id = C.ad_id WINDOW SLIDING 30 ON ts";
    let sql = session.sql(sql_text).unwrap();
    let imperative = session
        .from_as("impressions", "I")
        .join_as("clicks", "C")
        .on(col("I.ad_id").eq(col("C.ad_id")))
        .window(Window::sliding(30).on("ts"))
        .select([col("I.ad_id"), col("I.ts"), col("C.ts")])
        .run()
        .unwrap();
    assert_equivalent(sql, imperative);

    // Pure timestamp oracle: same ad, |Δts| ≤ 30 — window results must be
    // a function of the data alone, not of scheduling.
    let mut oracle: Vec<Tuple> = Vec::new();
    for i in &impressions {
        for c in &clicks {
            let dt = (i.get(1).as_int().unwrap() - c.get(1).as_int().unwrap()).abs();
            if i.get(0) == c.get(0) && dt <= 30 {
                oracle.push(tuple![
                    i.get(0).as_int().unwrap(),
                    i.get(1).as_int().unwrap(),
                    c.get(1).as_int().unwrap()
                ]);
            }
        }
    }
    oracle.sort();
    let mut sql = session.sql(sql_text).unwrap();
    assert!(!oracle.is_empty());
    assert_eq!(sql.rows(), oracle);

    // Streaming consumption while the topology runs.
    let mut live = session.sql_stream(sql_text).unwrap();
    assert!(live.is_streaming());
    let mut streamed: Vec<Tuple> = live.by_ref().collect();
    assert!(live.report().expect("report").error.is_none());
    streamed.sort();
    assert_eq!(streamed, oracle);
}

/// Tumbling windows through the session API, against the bucket oracle.
#[test]
fn windowed_tumbling_counts_match_oracle() {
    use squall::common::{tuple, DataType, Schema, SplitMix64};
    use squall::{count, Window};

    let mut rng = SplitMix64::new(32);
    let schema = Schema::of(&[("k", DataType::Int), ("ts", DataType::Int)]);
    let gen = |rng: &mut SplitMix64| -> Vec<Tuple> {
        let mut ts = 0i64;
        (0..800)
            .map(|_| {
                ts += rng.next_range(0, 4);
                tuple![rng.next_range(0, 25), ts]
            })
            .collect()
    };
    let (a, b) = (gen(&mut rng), gen(&mut rng));
    let mut session = Session::builder().machines(3).build();
    session
        .register_stream("A", schema.clone(), a.clone(), "ts")
        .unwrap()
        .register_stream("B", schema, b.clone(), "ts")
        .unwrap();

    let width = 50i64;
    let mut res = session
        .from("A")
        .join("B")
        .on(col("A.k").eq(col("B.k")))
        .window(Window::tumbling(width as u64))
        .select([count()])
        .run()
        .unwrap();
    // A windowed aggregate counts *per window*: one row per non-empty
    // tumbling bucket, shaped (window_start, window_end, count).
    let mut oracle: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
    for x in &a {
        for y in &b {
            let (tx, ty) = (x.get(1).as_int().unwrap(), y.get(1).as_int().unwrap());
            if x.get(0) == y.get(0) && tx / width == ty / width {
                *oracle.entry(tx / width * width).or_insert(0) += 1;
            }
        }
    }
    assert!(oracle.len() > 1, "several windows must be exercised");
    let expected: Vec<Tuple> = oracle.iter().map(|(&s, &n)| tuple![s, s + width - 1, n]).collect();
    assert_eq!(res.rows(), expected);
    // The per-window counts still partition the full windowed-join output.
    let total: i64 = oracle.values().sum();
    let mut join_rows =
        session.sql("SELECT A.k FROM A, B WHERE A.k = B.k WINDOW TUMBLING 50").unwrap();
    assert_eq!(join_rows.rows().len() as i64, total);
}

#[test]
fn explain_is_identical_across_interfaces() {
    let session = figure1_session();
    let via_sql = session
        .explain("SELECT SUM(T.E) FROM R, S, T WHERE R.B = S.B AND S.D = T.D AND S.C > 3")
        .unwrap();
    let via_builder = session
        .from("R")
        .join("S")
        .join("T")
        .on(col("R.B").eq(col("S.B")))
        .on(col("S.D").eq(col("T.D")))
        .filter(col("S.C").gt(lit(3)))
        .select([sum(col("T.E"))])
        .explain()
        .unwrap();
    assert_eq!(via_sql, via_builder, "both interfaces lower to one plan");
}
