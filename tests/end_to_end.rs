//! End-to-end integration tests: the paper's evaluation queries, run
//! through the full stack (SQL → plan → optimizer → topology → results),
//! checked against the naive in-memory oracle.

use squall::common::{Tuple, Value};
use squall::data::tpch::{self, TpchGen};
use squall::data::webgraph::{WebGraphGen, HUB};
use squall::data::{crawlcontent, google_cluster, queries};
use squall::engine::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall::join::naive::{naive_join, same_multiset};
use squall::partition::optimizer::SchemeKind;
use squall::plan::physical::execute_query;
use squall::plan::{Catalog, ExecConfig};

/// Group-by-count oracle over join output.
fn oracle_group_count(joined: &[Tuple], cols: &[usize]) -> Vec<Tuple> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<Vec<Value>, i64> = BTreeMap::new();
    for t in joined {
        *counts.entry(t.key(cols)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .map(|(mut k, c)| {
            k.push(Value::Int(c));
            Tuple::new(k)
        })
        .collect()
}

#[test]
fn reachability3_all_schemes_agree_with_oracle() {
    let arcs = WebGraphGen::new(150, 900, 3).generate();
    let q = queries::reachability3(&arcs);
    let oracle = naive_join(&q.spec, &q.data);
    assert!(!oracle.is_empty());
    for scheme in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
        let cfg = MultiwayConfig::new(scheme, LocalJoinKind::DBToaster, 9).count_only();
        let rep = run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
        assert!(rep.error.is_none());
        assert_eq!(rep.result_count, oracle.len() as u64, "{scheme}");
    }
}

#[test]
fn tpch9_partial_counts_match_oracle_under_skew() {
    let data = TpchGen::new(0.2, 2.0, 5).generate();
    let q = queries::tpch9_partial(&data, true);
    let oracle = naive_join(&q.spec, &q.data);
    for scheme in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
        for local in [LocalJoinKind::Traditional, LocalJoinKind::DBToaster] {
            let cfg = MultiwayConfig::new(scheme, local, 8).count_only();
            let rep = run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
            assert_eq!(rep.result_count, oracle.len() as u64, "{scheme} {local}");
        }
    }
}

#[test]
fn google_taskcount_sql_end_to_end() {
    let trace = google_cluster::generate(3000, 9);
    let mut catalog = Catalog::new();
    catalog.register(
        "MACHINE_EVENTS",
        google_cluster::machine_events_schema(),
        trace.machine_events.clone(),
    );
    catalog.register("JOB_EVENTS", google_cluster::job_events_schema(), trace.job_events.clone());
    catalog
        .register("TASK_EVENTS", google_cluster::task_events_schema(), trace.task_events.clone());
    let query = squall::sql::parse(
        "SELECT MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform, COUNT(*) \
         FROM JOB_EVENTS, TASK_EVENTS, MACHINE_EVENTS \
         WHERE TASK_EVENTS.eventType = 3 \
           AND JOB_EVENTS.jobID = TASK_EVENTS.jobID \
           AND MACHINE_EVENTS.machineID = TASK_EVENTS.machineID \
         GROUP BY MACHINE_EVENTS.machineID, MACHINE_EVENTS.platform",
    )
    .unwrap();
    let res = execute_query(&query, &catalog, &ExecConfig::default()).unwrap();

    // Oracle via the prepared query instance + group-count.
    let q = queries::google_taskcount(&trace);
    let joined = naive_join(&q.spec, &q.data);
    let expected = oracle_group_count(&joined, &q.agg_group_cols);
    assert_eq!(res.rows.len(), expected.len());
    assert!(same_multiset(&res.rows, &expected));
}

#[test]
fn webanalytics_sql_end_to_end() {
    let arcs = WebGraphGen::new(300, 4000, 7).generate();
    let content = crawlcontent::generate(300, 8);
    let mut catalog = Catalog::new();
    catalog.register("WebGraph", squall::data::webgraph::webgraph_schema(), arcs.clone());
    catalog.register("CrawlContent", crawlcontent::crawlcontent_schema(), content.clone());
    // HUB is integer id 0 in the synthetic graph.
    let query = squall::sql::parse(
        "SELECT W1.FromUrl, C.Score, COUNT(*) \
         FROM WebGraph W1, WebGraph W2, CrawlContent C \
         WHERE W1.ToUrl = 0 AND W2.FromUrl = 0 \
           AND W1.ToUrl = W2.FromUrl AND W1.FromUrl = C.Url \
         GROUP BY W1.FromUrl, C.Score",
    )
    .unwrap();
    let res = execute_query(&query, &catalog, &ExecConfig::default()).unwrap();

    let q = queries::webanalytics(&arcs, &content);
    let joined = naive_join(&q.spec, &q.data);
    let expected = oracle_group_count(&joined, &q.agg_group_cols);
    assert_eq!(res.rows.len(), expected.len());
    assert!(same_multiset(&res.rows, &expected));
    assert!(!res.rows.is_empty(), "hub must have 2-hop paths");
    let _ = HUB;
}

#[test]
fn q3_functional_interface_end_to_end() {
    use squall::expr::AggFunc;
    use squall::plan::{agg, col, Query};
    let data = TpchGen::new(0.2, 0.0, 4).generate();
    let mut catalog = Catalog::new();
    catalog.register("CUSTOMER", tpch::customer_schema(), data.customer.clone());
    catalog.register("ORDERS", tpch::orders_schema(), data.orders.clone());
    catalog.register("LINEITEM", tpch::lineitem_schema(), data.lineitem.clone());
    let q = Query::from_tables([("CUSTOMER", "C"), ("ORDERS", "O"), ("LINEITEM", "L")])
        .filter(col("C.custkey").eq(col("O.custkey")))
        .filter(col("O.orderkey").eq(col("L.orderkey")))
        .select([agg(AggFunc::Count, None)]);
    let res = execute_query(&q, &catalog, &ExecConfig::default()).unwrap();

    let qi = queries::tpch_q3(&data);
    let oracle = naive_join(&qi.spec, &qi.data);
    assert_eq!(res.rows[0].get(0).as_int().unwrap(), oracle.len() as i64);
}

#[test]
fn multiway_equals_pipeline_equals_oracle() {
    let arcs = WebGraphGen::new(120, 700, 21).generate();
    let q = queries::reachability3(&arcs);
    let oracle = naive_join(&q.spec, &q.data);
    let multi = run_multiway(
        &q.spec,
        q.data.clone(),
        &MultiwayConfig::new(SchemeKind::Hybrid, LocalJoinKind::DBToaster, 4),
    )
    .unwrap();
    assert!(same_multiset(&multi.results, &oracle));
    let pipe = squall::engine::run_pipeline(
        &q.spec,
        q.data.clone(),
        &[0, 1, 2],
        4,
        LocalJoinKind::Traditional,
        true,
    )
    .unwrap();
    assert!(same_multiset(&pipe.results, &oracle));
}

#[test]
fn memory_overflow_reports_partial_metrics() {
    let data = TpchGen::new(0.5, 2.0, 6).generate();
    let q = queries::tpch9_partial(&data, true);
    let cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 8)
        .count_only()
        .with_budget(200);
    let rep = run_multiway(&q.spec, q.data.clone(), &cfg).unwrap();
    assert!(matches!(rep.error, Some(squall::common::SquallError::MemoryOverflow { .. })));
    assert!(rep.loads.iter().sum::<u64>() > 0, "partial loads for extrapolation");
}

#[test]
fn sql_figure1_query_runs() {
    // The architecture figure's query over synthetic R, S, T.
    use squall::common::{tuple, DataType, Schema, SplitMix64};
    let mut rng = SplitMix64::new(2);
    let mut catalog = Catalog::new();
    catalog.register(
        "R",
        Schema::of(&[("A", DataType::Int), ("B", DataType::Int)]),
        (0..300).map(|_| tuple![rng.next_range(0, 50), rng.next_range(0, 20)]).collect(),
    );
    catalog.register(
        "S",
        Schema::of(&[("B", DataType::Int), ("C", DataType::Int), ("D", DataType::Int)]),
        (0..300)
            .map(|_| tuple![rng.next_range(0, 20), rng.next_range(0, 10), rng.next_range(0, 20)])
            .collect(),
    );
    catalog.register(
        "T",
        Schema::of(&[("D", DataType::Int), ("E", DataType::Int)]),
        (0..300).map(|_| tuple![rng.next_range(0, 20), rng.next_range(0, 100)]).collect(),
    );
    let query = squall::sql::parse(
        "SELECT SUM(T.E) FROM R, S, T WHERE R.B = S.B AND S.D = T.D AND S.C > 3",
    )
    .unwrap();
    let res = execute_query(&query, &catalog, &ExecConfig::default()).unwrap();
    assert_eq!(res.rows.len(), 1);
    // Oracle.
    use squall::expr::{JoinAtom, MultiJoinSpec, RelationDef};
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new("R", catalog.get("R").unwrap().schema.clone(), 300),
            RelationDef::new("S", catalog.get("S").unwrap().schema.clone(), 300),
            RelationDef::new("T", catalog.get("T").unwrap().schema.clone(), 300),
        ],
        vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 2, 2, 0)],
    )
    .unwrap();
    let s_filtered: Vec<Tuple> = catalog
        .get("S")
        .unwrap()
        .data
        .iter()
        .filter(|t| t.get(1).as_int().unwrap() > 3)
        .cloned()
        .collect();
    let joined = naive_join(
        &spec,
        &[
            catalog.get("R").unwrap().data.as_ref().clone(),
            s_filtered,
            catalog.get("T").unwrap().data.as_ref().clone(),
        ],
    );
    let expected: i64 = joined.iter().map(|t| t.get(6).as_int().unwrap()).sum();
    assert_eq!(res.rows[0].get(0).as_int().unwrap(), expected);
}
