//! Golden-file tests for the explain surface: the optimizer block (join
//! order, estimated-vs-actual cardinality table, scheme candidates) is
//! part of the user-facing contract, so its exact rendering is pinned.
//!
//! The goldens are deterministic: fixed data, fixed seed, fixed machine
//! count — the only normalization is trailing-whitespace trimming. If you
//! change the explain format intentionally, update the goldens alongside.

use squall::common::{tuple, DataType, Schema};
use squall::{SchemeKind, Session};

fn session() -> Session {
    let mut s = Session::builder().machines(4).seed(42).agg_parallelism(2).build();
    s.register(
        "R",
        Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
        (0..60).map(|i| tuple![i % 6, i]).collect(),
    )
    .unwrap();
    s.register(
        "S",
        Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]),
        (0..40).map(|i| tuple![i % 6, i % 10]).collect(),
    )
    .unwrap();
    s.register(
        "T",
        Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]),
        (0..10).map(|i| tuple![i % 10, i % 3]).collect(),
    )
    .unwrap();
    s.analyze("R").unwrap();
    s.analyze("S").unwrap();
    s.analyze("T").unwrap();
    s
}

const SQL: &str = "SELECT T.d, COUNT(*) FROM R, S, T \
                   WHERE R.a = S.a AND S.c = T.c GROUP BY T.d";

fn normalize(s: &str) -> String {
    s.lines().map(str::trim_end).collect::<Vec<_>>().join("\n")
}

/// The pre-run explain: estimates filled in, actuals dashed.
#[test]
fn explain_matches_golden() {
    let text = session().explain(SQL).unwrap();
    let golden = include_str!("golden/explain_optimizer.golden");
    assert_eq!(normalize(&text), normalize(golden), "\n--- got ---\n{text}");
}

/// The post-run explain: the same table with the run's per-relation task
/// counters and result metrics substituted for the dashes.
#[test]
fn explain_with_actuals_matches_golden() {
    let s = session();
    let mut rs = s.sql(SQL).unwrap();
    rs.rows();
    let report = rs.report().expect("distributed run has a report");
    let text = s.explain_with(SQL, report).unwrap();
    let golden = include_str!("golden/explain_actuals.golden");
    assert_eq!(normalize(&text), normalize(golden), "\n--- got ---\n{text}");
    assert!(!text.contains('—'), "no dashed actuals remain after the run: {text}");
}

/// A forced scheme short-circuits scheme costing but not order search,
/// and the explain says so.
#[test]
fn forced_scheme_renders_as_forced() {
    let mut s = session();
    s.config_mut().scheme = Some(SchemeKind::Random);
    let text = s.explain(SQL).unwrap();
    assert!(text.contains("scheme: forced by config"), "{text}");
}
