//! End-to-end standing-query coverage: resident materialized views that
//! survive appends and retractions after launch, serve consistent
//! read-your-writes snapshots, and match a full SELECT recompute
//! byte-for-byte — in-process and split across real loopback-TCP
//! workers. The property tests drive random append/retract
//! interleavings against the recompute oracle.

use proptest::prelude::*;
use squall::common::{tuple, DataType, Schema, SplitMix64, Tuple, Value};
use squall::engine::cluster::serve_job;
use squall::{Session, SessionBuilder};

/// In-process `squall-worker`s over real loopback TCP sockets; each
/// serves exactly one job (a resident view is one job for its whole
/// lifetime, from CREATE to DROP).
fn loopback_workers(n: usize) -> (Vec<String>, Vec<std::thread::JoinHandle<()>>) {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..n {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap().to_string());
        handles.push(std::thread::spawn(move || serve_job(&listener).unwrap()));
    }
    (addrs, handles)
}

/// R(a, b) ⋈ S(b, c) ⋈ T(c, d) with small key domains so appends hit
/// existing join partners.
fn chain_session(builder: SessionBuilder) -> Session {
    let mut s = builder.build();
    s.register(
        "R",
        Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
        vec![tuple![1, 10], tuple![2, 10], tuple![2, 20], tuple![3, 30]],
    )
    .unwrap();
    s.register(
        "S",
        Schema::of(&[("b", DataType::Int), ("c", DataType::Int)]),
        vec![tuple![10, 100], tuple![20, 100], tuple![20, 200]],
    )
    .unwrap();
    s.register(
        "T",
        Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]),
        vec![tuple![100, 7], tuple![200, 8], tuple![200, 9]],
    )
    .unwrap();
    s
}

const CHAIN_VIEW: &str = "SELECT R.a, COUNT(*) FROM R, S, T \
                          WHERE R.b = S.b AND S.c = T.c GROUP BY R.a";

/// The full-recompute oracle: run the view's SELECT from scratch on the
/// session's *current* catalog, always in-process (so the clustered
/// variants compare wire results against a local recompute).
fn recompute(s: &Session, select: &str) -> Vec<Tuple> {
    let mut local = s.clone();
    local.config_mut().cluster = None;
    local.sql(select).unwrap().rows().to_vec()
}

/// The acceptance scenario: a 3-way join + GROUP BY view stays resident
/// across three append rounds and a retraction, each snapshot matching
/// the full recompute byte-for-byte.
fn chain_view_stays_resident(builder: SessionBuilder) {
    let mut s = chain_session(builder);
    let view = s
        .sql(&format!("CREATE MATERIALIZED VIEW counts AS {CHAIN_VIEW}"))
        .map(|_| s.view("counts").unwrap())
        .unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, CHAIN_VIEW), "initial load");

    // Round 1: a new R row lands on existing S/T partners.
    s.append("R", vec![tuple![4, 20], tuple![1, 20]]).unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, CHAIN_VIEW), "after round 1");

    // Round 2: a middle-relation append multiplies existing pairs, and a
    // retraction kills join rows (including a whole group's worth).
    s.append("S", vec![tuple![30, 200]]).unwrap();
    s.retract("R", vec![tuple![2, 10]]).unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, CHAIN_VIEW), "after round 2");

    // Round 3: last-relation append plus a retraction that empties a
    // group entirely (a=3 only joined via S(30,200)).
    s.append("T", vec![tuple![100, 11]]).unwrap();
    s.retract("S", vec![tuple![30, 200]]).unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, CHAIN_VIEW), "after round 3");

    let report = s.drop_view("counts").unwrap();
    let stats = report.maintenance.expect("standing report carries counters");
    assert!(stats.appends >= 3 && stats.retractions >= 2, "{stats}");
    assert!(stats.epochs_applied >= 6, "every mutation became an epoch: {stats}");
}

#[test]
fn three_way_group_by_view_stays_resident_in_process() {
    chain_view_stays_resident(Session::builder().machines(4).seed(11));
}

#[test]
fn three_way_group_by_view_stays_resident_over_tcp() {
    let (addrs, handles) = loopback_workers(2);
    chain_view_stays_resident(Session::builder().machines(4).seed(11).cluster(addrs));
    for h in handles {
        h.join().unwrap();
    }
}

/// Read-your-writes: the snapshot taken immediately after `append`
/// returns must include the appended rows' consequences — no sleeps, no
/// retries, across many rapid rounds.
#[test]
fn snapshots_read_their_writes_without_waiting() {
    let mut s = chain_session(Session::builder().machines(3).seed(5));
    let select = "SELECT R.a, S.c FROM R, S WHERE R.b = S.b";
    let view = s.create_view("rs", &squall::sql::parse(select).unwrap()).unwrap();
    for i in 0..12i64 {
        s.append("R", vec![tuple![100 + i, 10]]).unwrap();
        let rows = view.snapshot().unwrap();
        assert!(
            rows.iter().any(|t| t.get(0) == &Value::Int(100 + i)),
            "append {i} visible in its own snapshot"
        );
        assert_eq!(rows, recompute(&s, select), "round {i}");
    }
    s.drop_view("rs").unwrap();
}

/// A windowed standing view over streams: post-launch appends extend the
/// per-window aggregate exactly like a recompute (streams are
/// append-only, so no retraction arm).
#[test]
fn windowed_stream_view_extends_incrementally() {
    let schema = Schema::of(&[("k", DataType::Int), ("ts", DataType::Int)]);
    let mut s = Session::builder().machines(3).seed(9).build();
    s.register_stream("A", schema.clone(), vec![tuple![1, 0], tuple![2, 3], tuple![1, 7]], "ts")
        .unwrap();
    s.register_stream("B", schema, vec![tuple![1, 1], tuple![2, 4]], "ts").unwrap();
    let select = "SELECT A.k, COUNT(*) FROM A, B WHERE A.k = B.k \
                  WINDOW TUMBLING 5 ON ts GROUP BY A.k";
    let view = s.create_view("w", &squall::sql::parse(select).unwrap()).unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, select), "initial");
    s.append("A", vec![tuple![2, 8], tuple![1, 9]]).unwrap();
    s.append("B", vec![tuple![1, 8], tuple![2, 9], tuple![1, 12]]).unwrap();
    assert_eq!(view.snapshot().unwrap(), recompute(&s, select), "after appends");
    assert!(
        s.retract("A", vec![tuple![1, 0]]).is_err(),
        "stream sources stay append-only under a windowed view"
    );
    s.drop_view("w").unwrap();
}

/// One random mutation per step: append a random row to R or S, or
/// retract a random still-present base row. Returns the row so the
/// shadow tables stay in sync.
fn random_step(rng: &mut SplitMix64, s: &mut Session, shadow: &mut [Vec<Tuple>; 2], dom: i64) {
    let rel = rng.next_range(0, 1) as usize;
    let name = ["R", "S"][rel];
    let retract_ok = !shadow[rel].is_empty();
    if retract_ok && rng.next_range(0, 2) == 0 {
        let idx = rng.next_range(0, shadow[rel].len() as i64 - 1) as usize;
        let row = shadow[rel].swap_remove(idx);
        s.retract(name, vec![row]).unwrap();
    } else {
        let row = tuple![rng.next_range(0, dom), rng.next_range(0, dom)];
        shadow[rel].push(row.clone());
        s.append(name, vec![row]).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random append/retract interleavings: after every mutation the
    /// resident view's snapshot equals the full-recompute oracle — for a
    /// plain join view and a GROUP BY view, across machine counts and
    /// key domains, in-process and over loopback TCP.
    #[test]
    fn random_interleavings_match_recompute_oracle(
        seed in 0u64..1000,
        machines in 1usize..5,
        dom in 2i64..7,
        steps in 4usize..10,
        aggregate in 0u8..2,
        distribute in 0u8..2,
    ) {
        let select = if aggregate == 1 {
            "SELECT R.a, COUNT(*) FROM R, S WHERE R.b = S.a GROUP BY R.a"
        } else {
            "SELECT R.a, S.b FROM R, S WHERE R.b = S.a"
        };
        let mut rng = SplitMix64::new(seed);
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
        let gen = |rng: &mut SplitMix64, n: usize| -> Vec<Tuple> {
            (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
        };
        let mut shadow = [gen(&mut rng, 6), gen(&mut rng, 6)];

        let mut builder = Session::builder().machines(machines).seed(seed);
        let worker_handles = if distribute == 1 {
            let (addrs, handles) = loopback_workers(1);
            builder = builder.cluster(addrs);
            handles
        } else {
            Vec::new()
        };
        let mut s = builder.build();
        s.register("R", schema.clone(), shadow[0].clone()).unwrap();
        s.register("S", schema, shadow[1].clone()).unwrap();

        let view = s.create_view("v", &squall::sql::parse(select).unwrap()).unwrap();
        prop_assert_eq!(view.snapshot().unwrap(), recompute(&s, select), "initial load");
        for step in 0..steps {
            random_step(&mut rng, &mut s, &mut shadow, dom);
            prop_assert!(view.error().is_none(), "resident run healthy at step {}", step);
            prop_assert_eq!(view.snapshot().unwrap(), recompute(&s, select), "step {}", step);
        }
        s.drop_view("v").unwrap();
        for h in worker_handles {
            h.join().unwrap();
        }
    }
}
