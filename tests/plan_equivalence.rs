//! Plan-equivalence harness: the optimizer may only change *performance*,
//! never answers.
//!
//! Random multiway queries (3–6 relations; chains with optional extra
//! cycle atoms; mixed pushed filters, group-by aggregates and event-time
//! windows) are executed under **every** enumerated join order (connected
//! prefixes, capped) and **every** partitioning scheme, in-process and
//! over loopback TCP. Each run must be byte-identical to the
//! written-order oracle (`optimizer(off)`, the pre-optimizer planner):
//! the materialized-result contract sorts rows deterministically, and a
//! windowed aggregate's window-order columns participate in that
//! comparison, so the watermark/window contract is checked by the same
//! equality.
//!
//! The proptest case budgets are fixed in code (the bundled proptest shim
//! has no env override) — CI runs exactly this many cases.

use proptest::prelude::*;
use squall::common::{tuple, DataType, Schema, SplitMix64, Tuple};
use squall::engine::cluster::serve_job;
use squall::plan::optimizer::{optimize, OptimizerMode};
use squall::plan::physical::{execute_query, ExecConfig};
use squall::plan::{enumerate_orders, Catalog, PhysicalQuery, Query};
use squall::session::{agg, col, count, lit, sum, AggFunc, ClusterSpec, SchemeKind, Window};

/// One generated equivalence case.
#[derive(Debug, Clone)]
struct Case {
    n_rels: usize,
    rows: usize,
    dom: i64,
    seed: u64,
    /// 0 = projection, 1 = group-by aggregate, 2 = windowed join,
    /// 3 = windowed aggregate.
    shape: u8,
    /// Add `R0.a = R_last.b` closing the chain into a cycle.
    cycle: bool,
    /// Push a filter onto this relation (when < n_rels).
    filter_rel: usize,
    machines: usize,
}

/// Relations R0..Rn-1, each (a, b, ts); windowed shapes register streams
/// declared on `ts`.
fn build_catalog(case: &Case) -> Catalog {
    let mut rng = SplitMix64::new(case.seed);
    let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int), ("ts", DataType::Int)]);
    let windowed = case.shape >= 2;
    let mut catalog = Catalog::new();
    for r in 0..case.n_rels {
        let mut ts = 0i64;
        let data: Vec<Tuple> = (0..case.rows)
            .map(|_| {
                ts += rng.next_range(0, 4);
                tuple![rng.next_range(0, case.dom), rng.next_range(0, case.dom), ts]
            })
            .collect();
        let name = format!("R{r}");
        if windowed {
            catalog.register_stream(&name, schema.clone(), data, "ts").unwrap();
        } else {
            catalog.register(&name, schema.clone(), data).unwrap();
        }
    }
    catalog
}

fn build_query(case: &Case) -> Query {
    let n = case.n_rels;
    let names: Vec<String> = (0..n).map(|r| format!("R{r}")).collect();
    let mut q = Query::from_tables(names.iter().map(|s| (s.as_str(), s.as_str())));
    for r in 0..n - 1 {
        q = q.filter(col(format!("R{r}.b")).eq(col(format!("R{}.a", r + 1))));
    }
    if case.cycle {
        q = q.filter(col("R0.a").eq(col(format!("R{}.b", n - 1))));
    }
    if case.filter_rel < n {
        q = q.filter(col(format!("R{}.a", case.filter_rel)).gt(lit(case.dom / 4)));
    }
    let last = format!("R{}", n - 1);
    match case.shape {
        0 => q.select([col("R0.a"), col("R1.b"), col(format!("{last}.b"))]),
        1 => q.group_by([col(format!("{last}.b"))]).select([
            col(format!("{last}.b")),
            count(),
            sum(col("R0.a")),
        ]),
        2 => q.window(Window::sliding(6).on("ts")).select([col("R0.a"), col(format!("{last}.ts"))]),
        _ => q.window(Window::tumbling(8).on("ts")).group_by([col("R1.a")]).select([
            col("R1.a"),
            count(),
            agg(AggFunc::Avg, Some(col(format!("{last}.b")))),
        ]),
    }
}

fn base_config(case: &Case) -> ExecConfig {
    ExecConfig {
        machines: case.machines,
        seed: case.seed,
        optimizer: OptimizerMode::Off,
        ..ExecConfig::default()
    }
}

/// The written-order, default-scheme oracle (`optimizer(off)` — exactly
/// the pre-optimizer planner).
fn oracle_rows(case: &Case, catalog: &Catalog, q: &Query) -> Vec<Tuple> {
    let cfg = base_config(case);
    let mut rs = execute_query(q, catalog, &cfg).unwrap();
    rs.rows().to_vec()
}

/// One in-process worker over real loopback TCP, serving one job.
fn loopback_worker() -> (ClusterSpec, std::thread::JoinHandle<()>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || serve_job(&listener).unwrap());
    (ClusterSpec::new([addr]), handle)
}

const ORDER_CAP: usize = 10;

proptest! {
    // Fixed case budget: every case fans out to ≤ ORDER_CAP orders ×
    // 3 schemes distributed executions.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Byte-identical results under every enumerated join order × every
    /// scheme, plus the optimizer's own (On and Exhaustive) plans.
    #[test]
    fn every_order_and_scheme_is_byte_identical(
        n_rels in 3usize..7,
        rows in 8usize..24,
        dom in 3i64..9,
        seed in 0u64..10_000,
        shape in 0u8..4,
        cycle_pick in 0u8..2,
        filter_rel in 0usize..8,
        machines in 2usize..5,
    ) {
        let cycle = cycle_pick == 1;
        let case = Case { n_rels, rows, dom, seed, shape, cycle, filter_rel, machines };
        let catalog = build_catalog(&case);
        let q = build_query(&case);
        let expected = oracle_rows(&case, &catalog, &q);

        let template = PhysicalQuery::plan(&q, &catalog).unwrap();
        let orders = enumerate_orders(n_rels, template.join_atoms(), ORDER_CAP);
        prop_assert!(!orders.is_empty());
        for order in &orders {
            for scheme in [SchemeKind::Hash, SchemeKind::Random, SchemeKind::Hybrid] {
                let mut p = PhysicalQuery::plan(&q, &catalog).unwrap();
                p.apply_order(order).unwrap();
                let mut cfg = base_config(&case);
                cfg.scheme = Some(scheme);
                let mut rs = p.execute(&catalog, &cfg).unwrap();
                prop_assert_eq!(
                    rs.rows(), &expected[..],
                    "order {:?} scheme {:?} diverged from the written-order oracle",
                    order, scheme
                );
            }
        }

        // The optimizer's own choices (order + scheme) under both search
        // modes — including its statistics-informed path.
        let mut analyzed = build_catalog(&case);
        for r in 0..n_rels {
            analyzed.analyze(&format!("R{r}"), 1_000, seed).unwrap();
        }
        for mode in [OptimizerMode::On, OptimizerMode::Exhaustive] {
            let mut cfg = base_config(&case);
            cfg.optimizer = mode;
            let mut rs = execute_query(&q, &analyzed, &cfg).unwrap();
            prop_assert_eq!(rs.rows(), &expected[..], "optimizer({}) diverged", mode);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The same contract over loopback TCP: the optimizer-chosen plan,
    /// split across a real socket, stays byte-identical to the local
    /// written-order oracle.
    #[test]
    fn optimized_plans_survive_loopback_tcp(
        n_rels in 3usize..5,
        seed in 0u64..10_000,
        shape in 0u8..4,
        machines in 2usize..4,
    ) {
        let case = Case {
            n_rels, rows: 14, dom: 5, seed, shape, cycle: false,
            filter_rel: 0, machines,
        };
        let catalog = build_catalog(&case);
        let q = build_query(&case);
        let expected = oracle_rows(&case, &catalog, &q);

        let (cluster, handle) = loopback_worker();
        let mut cfg = base_config(&case);
        cfg.optimizer = OptimizerMode::On;
        cfg.cluster = Some(cluster);
        let mut rs = execute_query(&q, &catalog, &cfg).unwrap();
        let rows = rs.rows().to_vec();
        drop(rs);
        handle.join().unwrap();
        prop_assert_eq!(rows, expected, "TCP run diverged from the local oracle");
    }
}

/// `optimizer(off)` must reproduce the pre-optimizer planner exactly:
/// the node layout (spouts in written FROM order, join, agg) is the
/// topology the previous release built for this query.
#[test]
fn optimizer_off_reproduces_written_order_node_layout() {
    let case = Case {
        n_rels: 3,
        rows: 12,
        dom: 4,
        seed: 7,
        shape: 1,
        cycle: false,
        filter_rel: 9,
        machines: 4,
    };
    let catalog = build_catalog(&case);
    let q = build_query(&case);
    let mut plan = PhysicalQuery::plan(&q, &catalog).unwrap();
    let cfg = base_config(&case);
    optimize(&mut plan, &catalog, &cfg).unwrap();
    assert!(plan.decision().is_none(), "optimizer(off) must not record a decision");
    let (names, parallelism, is_spout) = plan.node_layout(&cfg);
    assert_eq!(names, vec!["src-R0", "src-R1", "src-R2", "join", "agg"]);
    assert_eq!(parallelism, vec![1, 1, 1, 4, 2]);
    assert_eq!(is_spout, vec![true, true, true, false, false]);
}

/// With the optimizer on, a written order that is provably worse than the
/// best order gets rewritten — and the rewrite is visible in the
/// decision, while `rows()` stays identical (spot check of the property
/// above on a crafted skewed case).
#[test]
fn optimizer_reorders_an_obviously_bad_written_order() {
    // R0 ⋈ R1 huge × huge with a tiny, heavily filtered R2 joining both:
    // starting from R2 is strictly cheaper.
    let mut catalog = Catalog::new();
    let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]);
    let mut rng = SplitMix64::new(11);
    let big = |rng: &mut SplitMix64| -> Vec<Tuple> {
        (0..400).map(|_| tuple![rng.next_range(0, 8), rng.next_range(0, 8)]).collect()
    };
    let r0 = big(&mut rng);
    let r1 = big(&mut rng);
    let r2: Vec<Tuple> =
        (0..6).map(|_| tuple![rng.next_range(0, 8), rng.next_range(0, 8)]).collect();
    catalog.register("R0", schema.clone(), r0).unwrap();
    catalog.register("R1", schema.clone(), r1).unwrap();
    catalog.register("R2", schema, r2).unwrap();
    for r in 0..3 {
        catalog.analyze(&format!("R{r}"), 1_000, 5).unwrap();
    }
    let q = Query::from_tables([("R0", "R0"), ("R1", "R1"), ("R2", "R2")])
        .filter(col("R0.a").eq(col("R1.a")))
        .filter(col("R1.b").eq(col("R2.a")))
        .filter(col("R0.b").eq(col("R2.b")))
        .select([count()]);

    let off_cfg = ExecConfig { optimizer: OptimizerMode::Off, ..ExecConfig::default() };
    let mut oracle = execute_query(&q, &catalog, &off_cfg).unwrap();
    let expected = oracle.rows().to_vec();

    let on_cfg = ExecConfig::default();
    let mut plan = PhysicalQuery::plan(&q, &catalog).unwrap();
    optimize(&mut plan, &catalog, &on_cfg).unwrap();
    let d = plan.decision().expect("optimizer ran").clone();
    assert!(d.est_cost <= d.written_cost, "search never worsens the written order");
    assert_ne!(d.order, vec![0, 1, 2], "tiny selective relation should move early");
    assert!(d.scheme.is_some(), "no forced scheme, so the cost model chose one");
    let mut rs = plan.execute(&catalog, &on_cfg).unwrap();
    assert_eq!(rs.rows(), &expected[..]);
}
