//! Distributed end-to-end tests: one topology split across **separate OS
//! processes** over loopback TCP.
//!
//! Each test spawns real `squall-worker` child processes (the binary this
//! package builds), points a session's `cluster([...])` at them, and
//! checks the contract the transport layer promises: row-identical
//! results, identical per-machine loads, identical Eos termination and
//! `MemoryOverflow` abort-drain semantics — plus wire metrics in the
//! report and the task→peer placement in `explain`.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use squall::common::{tuple, DataType, Schema, SplitMix64, SquallError, Tuple};
use squall::engine::cluster::ClusterSpec;
use squall::engine::driver::{run_multiway, LocalJoinKind, MultiwayConfig};
use squall::expr::{JoinAtom, MultiJoinSpec, RelationDef};
use squall::partition::optimizer::SchemeKind;
use squall::session::JoinReport;
use squall::{Session, SessionBuilder};

/// One spawned `squall-worker --once` child process on an ephemeral port.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn() -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_squall-worker"))
            .args(["--listen", "127.0.0.1:0", "--once"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn squall-worker");
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected worker banner: {line:?}"))
            .to_string();
        Worker { child, addr }
    }

    /// Wait for the worker to serve its job and exit cleanly.
    fn join(mut self) {
        let status = self.child.wait().expect("wait for worker");
        assert!(status.success(), "worker exited with {status}");
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill(); // no-op if already reaped by join()
        let _ = self.child.wait();
    }
}

fn spawn_workers(n: usize) -> Vec<Worker> {
    (0..n).map(|_| Worker::spawn()).collect()
}

fn worker_addrs(workers: &[Worker]) -> Vec<String> {
    workers.iter().map(|w| w.addr.clone()).collect()
}

/// The deterministic parts of two reports must coincide: same plan, same
/// data, same seed — only the process placement differed.
fn assert_reports_match(local: &JoinReport, dist: &JoinReport) {
    assert_eq!(local.result_count, dist.result_count, "result counts");
    assert_eq!(local.input_count, dist.input_count, "input counts");
    assert_eq!(local.loads, dist.loads, "per-machine loads");
    assert_eq!(local.scheme_description, dist.scheme_description, "scheme");
    assert!((local.replication_factor - dist.replication_factor).abs() < 1e-9);
    assert!((local.skew_degree - dist.skew_degree).abs() < 1e-9);
    assert!((local.network_factor - dist.network_factor).abs() < 1e-9);
}

/// R(a,b), S(a,c), T(c,d) with a mid-size random fill — big enough that
/// every peer hosts working join tasks, small enough for a test.
fn rst_session(builder: SessionBuilder) -> Session {
    let mut rng = SplitMix64::new(23);
    let mut gen = |n: usize, dom: i64| -> Vec<Tuple> {
        (0..n).map(|_| tuple![rng.next_range(0, dom), rng.next_range(0, dom)]).collect()
    };
    let mut s = builder.build();
    s.register("R", Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]), gen(300, 20))
        .unwrap();
    s.register("S", Schema::of(&[("a", DataType::Int), ("c", DataType::Int)]), gen(300, 20))
        .unwrap();
    s.register("T", Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]), gen(300, 20))
        .unwrap();
    s
}

const HYPERCUBE_SQL: &str = "SELECT R.b, T.d FROM R, S, T WHERE R.a = S.a AND S.c = T.c";

#[test]
fn three_way_hypercube_split_across_processes_matches_local() {
    let base = || Session::builder().machines(8).seed(5).batch_size(32);
    let mut local = rst_session(base());
    let mut local_rs = local.sql(HYPERCUBE_SQL).unwrap();
    let local_rows = local_rs.rows().to_vec();
    assert!(!local_rows.is_empty());

    let workers = spawn_workers(2);
    let mut dist = rst_session(base().cluster(worker_addrs(&workers)));
    std::mem::swap(dist.catalog_mut(), local.catalog_mut());
    let mut dist_rs = dist.sql(HYPERCUBE_SQL).unwrap();
    assert_eq!(dist_rs.rows(), local_rows, "row-identical across 3 OS processes");
    for w in workers {
        w.join();
    }

    let local_report = local_rs.report().expect("distributed run");
    let dist_report = dist_rs.report().expect("distributed run");
    assert_reports_match(local_report, dist_report);

    // Wire metrics: bytes/batches per peer, both directions.
    assert!(local_report.transport.is_none(), "single-process run has no wire");
    let transport = dist_report.transport.as_ref().expect("cluster run reports wire traffic");
    assert_eq!(transport.peers.len(), 2, "one stats row per worker");
    for peer in &transport.peers {
        assert!(peer.batches_sent > 0, "spouts feed every worker: {peer:?}");
        assert!(peer.bytes_sent > 0 && peer.bytes_received > 0, "{peer:?}");
    }
}

#[test]
fn distributed_aggregate_with_having_matches_local() {
    let sql = "SELECT R.a, COUNT(*) FROM R, S, T \
               WHERE R.a = S.a AND S.c = T.c GROUP BY R.a HAVING COUNT(*) > 50";
    let base = || Session::builder().machines(6).agg_parallelism(3).seed(11);
    let mut local = rst_session(base());
    let mut local_rs = local.sql(sql).unwrap();
    let local_rows = local_rs.rows().to_vec();

    let workers = spawn_workers(2);
    let mut dist = rst_session(base().cluster(worker_addrs(&workers)));
    std::mem::swap(dist.catalog_mut(), local.catalog_mut());
    let mut dist_rs = dist.sql(sql).unwrap();
    assert_eq!(dist_rs.rows(), local_rows);
    for w in workers {
        w.join();
    }
    assert_reports_match(local_rs.report().unwrap(), dist_rs.report().unwrap());
}

/// Two ad-event streams for the windowed scenario.
fn stream_session(builder: SessionBuilder) -> Session {
    let schema = Schema::of(&[("ad_id", DataType::Int), ("ts", DataType::Int)]);
    let mut rng = SplitMix64::new(31);
    let mut gen = |n: usize| -> Vec<Tuple> {
        (0..n).map(|_| tuple![rng.next_range(0, 25), rng.next_range(0, 2000)]).collect()
    };
    let mut s = builder.build();
    s.register_stream("impressions", schema.clone(), gen(400), "ts").unwrap();
    s.register_stream("clicks", schema, gen(400), "ts").unwrap();
    s
}

const WINDOWED_SQL: &str = "SELECT I.ad_id, I.ts, C.ts FROM impressions I, clicks C \
                            WHERE I.ad_id = C.ad_id WINDOW SLIDING 40 ON ts";

#[test]
fn windowed_join_split_across_processes_matches_local() {
    let base = || Session::builder().machines(5).seed(2);
    let mut local = stream_session(base());
    let mut local_rs = local.sql(WINDOWED_SQL).unwrap();
    let local_rows = local_rs.rows().to_vec();
    assert!(!local_rows.is_empty());

    let workers = spawn_workers(2);
    let mut dist = stream_session(base().cluster(worker_addrs(&workers)));
    std::mem::swap(dist.catalog_mut(), local.catalog_mut());
    let mut dist_rs = dist.sql(WINDOWED_SQL).unwrap();
    assert_eq!(
        dist_rs.rows(),
        local_rows,
        "event-time window semantics survive the wire (per-relation FIFO)"
    );
    for w in workers {
        w.join();
    }
    assert_reports_match(local_rs.report().unwrap(), dist_rs.report().unwrap());
}

#[test]
fn distributed_streaming_resultset_yields_while_running() {
    let workers = spawn_workers(2);
    let dist = stream_session(Session::builder().machines(4).cluster(worker_addrs(&workers)));
    let mut rs = dist.sql_stream(WINDOWED_SQL).unwrap();
    assert!(rs.is_streaming());
    let mut streamed: Vec<Tuple> = rs.by_ref().collect();
    let report = rs.report().expect("report after exhaustion");
    assert!(report.error.is_none(), "{:?}", report.error);
    assert!(report.transport.is_some());
    for w in workers {
        w.join();
    }
    streamed.sort();
    let local = stream_session(Session::builder().machines(4));
    assert_eq!(local.sql(WINDOWED_SQL).unwrap().rows(), streamed);
}

const WINDOWED_AGG_SQL: &str = "SELECT I.ad_id, COUNT(*) FROM impressions I, clicks C \
                                WHERE I.ad_id = C.ad_id WINDOW TUMBLING 100 ON ts \
                                GROUP BY I.ad_id";

#[test]
fn windowed_aggregate_split_across_processes_matches_local() {
    // Per-window GROUP BY sharded 4 ways by group hash: per-shard
    // watermark frontiers cross the TCP edges (remote join tasks → agg
    // shards → the coordinator's merge sink), so the per-window rows
    // must stream byte-identically to the single-process run regardless
    // of placement.
    let base = || Session::builder().machines(6).agg_parallelism(4).seed(3);
    let mut local = stream_session(base());
    let mut local_rs = local.sql(WINDOWED_AGG_SQL).unwrap();
    let local_rows = local_rs.rows().to_vec();
    assert!(local_rows.len() > 3, "several (window, group) rows expected");
    assert_eq!(local_rs.schema().field(0).name, "window_start");

    let workers = spawn_workers(2);
    let mut dist = stream_session(base().cluster(worker_addrs(&workers)));
    std::mem::swap(dist.catalog_mut(), local.catalog_mut());
    // Streaming consumption: closed windows arrive over the wire in
    // window order, before end-of-run.
    let mut rs = dist.sql_stream(WINDOWED_AGG_SQL).unwrap();
    assert!(rs.is_streaming());
    let streamed: Vec<Tuple> = rs.by_ref().collect();
    let report = rs.report().expect("report after exhaustion");
    assert!(report.error.is_none(), "{:?}", report.error);
    for w in workers {
        w.join();
    }
    let starts: Vec<i64> = streamed.iter().map(|t| t.get(0).as_int().unwrap()).collect();
    let mut sorted = starts.clone();
    sorted.sort_unstable();
    assert_eq!(starts, sorted, "per-window rows must stream in window order");
    // Not just the same multiset: the watermark-driven merge makes the
    // streamed order deterministic, so the 3-process sharded run must be
    // byte-identical to the local sharded run.
    assert_eq!(streamed, local_rows, "per-window rows are placement-independent");
    assert_reports_match(local_rs.report().unwrap(), report);
}

#[test]
fn windowed_aggregate_abort_drains_across_processes() {
    // A join-machine memory budget that overflows mid-stream: the typed
    // error must cross the wire and both modes must drain — watermark
    // punctuation must never wedge the abort path.
    use squall::engine::driver::{AggPlan, WindowPlan};
    use squall::join::{AggSpec, WindowSpec};

    let schema = Schema::of(&[("k", DataType::Int), ("ts", DataType::Int)]);
    let spec = MultiJoinSpec::new(
        vec![RelationDef::new("A", schema.clone(), 400), RelationDef::new("B", schema, 400)],
        vec![JoinAtom::eq(0, 0, 1, 0)],
    )
    .unwrap();
    let mut rng = SplitMix64::new(17);
    let data: Vec<Vec<Tuple>> = (0..2)
        .map(|_| {
            let mut ts = 0i64;
            (0..400)
                .map(|_| {
                    ts += rng.next_range(0, 3);
                    tuple![rng.next_range(0, 4), ts]
                })
                .collect()
        })
        .collect();

    let mut cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 2)
        .with_window(WindowPlan { spec: WindowSpec::Sliding { size: 500 }, ts_cols: vec![1, 1] })
        .with_agg(AggPlan { group_cols: vec![0], aggs: vec![AggSpec::count()], parallelism: 1 })
        .with_budget(80);
    let local = run_multiway(&spec, data.clone(), &cfg).unwrap();
    let Some(SquallError::MemoryOverflow { budget: local_budget, .. }) = local.error else {
        panic!("seed setup must overflow locally, got {:?}", local.error);
    };

    let workers = spawn_workers(2);
    cfg.cluster = Some(ClusterSpec::new(worker_addrs(&workers)));
    let dist = run_multiway(&spec, data, &cfg).unwrap();
    for w in workers {
        w.join();
    }
    match dist.error {
        Some(SquallError::MemoryOverflow { budget, .. }) => assert_eq!(budget, local_budget),
        other => panic!("expected MemoryOverflow across the wire, got {other:?}"),
    }
}

#[test]
fn memory_overflow_on_a_worker_aborts_and_drains_every_process() {
    // Driver-level so the per-machine budget knob is reachable. The
    // overflowing join machine lives on a worker process; its typed
    // error must cross the wire and every process must drain (the
    // workers exit 0; the coordinator reports the error with partial
    // metrics — the paper's §7.3 extrapolation contract).
    let spec = MultiJoinSpec::new(
        vec![
            RelationDef::new("R", Schema::of(&[("x", DataType::Int), ("y", DataType::Int)]), 400),
            RelationDef::new("S", Schema::of(&[("y", DataType::Int), ("z", DataType::Int)]), 400),
            RelationDef::new("T", Schema::of(&[("z", DataType::Int), ("t", DataType::Int)]), 400),
        ],
        vec![JoinAtom::eq(0, 1, 1, 0), JoinAtom::eq(1, 1, 2, 0)],
    )
    .unwrap();
    let mut rng = SplitMix64::new(8);
    let data: Vec<Vec<Tuple>> = (0..3)
        .map(|_| (0..400).map(|_| tuple![rng.next_range(0, 4), rng.next_range(0, 4)]).collect())
        .collect();

    let mut cfg = MultiwayConfig::new(SchemeKind::Hash, LocalJoinKind::DBToaster, 2)
        .count_only()
        .with_budget(60);
    let local = run_multiway(&spec, data.clone(), &cfg).unwrap();
    let Some(SquallError::MemoryOverflow { budget: local_budget, .. }) = local.error else {
        panic!("seed setup must overflow locally, got {:?}", local.error);
    };

    let workers = spawn_workers(2);
    cfg.cluster = Some(ClusterSpec::new(worker_addrs(&workers)));
    let dist = run_multiway(&spec, data, &cfg).unwrap();
    for w in workers {
        w.join();
    }
    match dist.error {
        Some(SquallError::MemoryOverflow { budget, .. }) => assert_eq!(budget, local_budget),
        other => panic!("expected MemoryOverflow across the wire, got {other:?}"),
    }
    assert!(dist.input_count > 0, "partial metrics survive the abort");
}

#[test]
fn explain_prints_cluster_placement_without_contacting_workers() {
    // explain is pure planning: the addresses need not be live.
    let s =
        rst_session(Session::builder().machines(8).cluster(["127.0.0.1:7401", "127.0.0.1:7402"]));
    let text = s.explain("SELECT R.a, COUNT(*) FROM R, S WHERE R.a = S.a GROUP BY R.a").unwrap();
    assert!(text.contains("cluster: 3 peers over TCP (coordinator + 2 workers)"), "{text}");
    assert!(text.contains("src-R: task 0 @coordinator"), "{text}");
    assert!(text.contains("@127.0.0.1:7401"), "{text}");
    assert!(text.contains("join:"), "{text}");
    assert!(text.contains("agg:"), "{text}");
    // Single-table queries stay local and say so.
    let text = s.explain("SELECT R.a FROM R").unwrap();
    assert!(text.contains("runs locally on the coordinator"), "{text}");

    // Windowed aggregates place group-hash shards plus the ordered
    // merge sink — both must show up in the task→peer map.
    let s = stream_session(
        Session::builder()
            .machines(6)
            .agg_parallelism(4)
            .cluster(["127.0.0.1:7401", "127.0.0.1:7402"]),
    );
    let text = s.explain(WINDOWED_AGG_SQL).unwrap();
    assert!(text.contains("agg: tasks 0-1 @coordinator"), "4 agg shards expected: {text}");
    assert!(text.contains("task 3 @127.0.0.1:7402"), "{text}");
    assert!(text.contains("agg-merge: task 0 @coordinator"), "{text}");
    assert!(text.contains("group-hash sharded + ordered window merge"), "{text}");
}
